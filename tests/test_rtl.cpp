// Unit tests for the RTL modelling kernel: node registry, fault overlays,
// two-phase register semantics and VCD output.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "rtl/kernel.hpp"
#include "rtl/vcd.hpp"

namespace issrtl::rtl {
namespace {

TEST(Kernel, WireWriteReadImmediate) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0xDEADBEEF);
  EXPECT_EQ(w.r(), 0xDEADBEEFu);
}

TEST(Kernel, WidthMasking) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 4);
  w.w(0xFF);
  EXPECT_EQ(w.r(), 0xFu);
  Sig b = ctx.wire("b", "iu.alu", 1);
  b.w(2);
  EXPECT_EQ(b.r(), 0u);
}

TEST(Kernel, RegisterTwoPhase) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.n(42);
  EXPECT_EQ(r.r(), 0u);  // not visible before the clock edge
  ctx.commit_all();
  EXPECT_EQ(r.r(), 42u);
}

TEST(Kernel, RegisterHoldsWithoutWrite) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.n(7);
  ctx.commit_all();
  ctx.commit_all();
  ctx.commit_all();
  EXPECT_EQ(r.r(), 7u);
}

TEST(Kernel, StuckAt1ForcesBit) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 5);
  w.w(0);
  EXPECT_EQ(w.r(), 32u);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFFFu);
}

TEST(Kernel, StuckAt0ForcesBit) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFFEu);
}

TEST(Kernel, OpenLineFreezesArmTimeValue) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0x10);                                  // bit 4 high at injection
  ctx.arm_fault(0, FaultModel::kOpenLine, 4);
  w.w(0);
  EXPECT_EQ(w.r(), 0x10u);                    // bit stays high
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0u);
}

TEST(Kernel, OpenLineFreezesZero) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kOpenLine, 4); // bit low at injection
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFEFu);
}

TEST(Kernel, TransientFlipIsOneShot) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.poke(8);
  ctx.arm_fault(0, FaultModel::kTransientBitFlip, 3);
  EXPECT_EQ(r.r(), 0u);       // flipped now
  r.n(8);
  ctx.commit_all();
  EXPECT_EQ(r.r(), 8u);       // overwritten value is clean
}

TEST(Kernel, DoubleFaultOnNodeRejected) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  EXPECT_THROW(ctx.arm_fault(0, FaultModel::kStuckAt1, 1), std::logic_error);
}

TEST(Kernel, BitRangeChecked) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 4);
  EXPECT_THROW(ctx.arm_fault(0, FaultModel::kStuckAt0, 4), std::out_of_range);
}

TEST(Kernel, ClearFaultsRestores) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 7);
  EXPECT_EQ(w.r(), 128u);
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0u);
  // Can re-arm after clearing.
  ctx.arm_fault(0, FaultModel::kStuckAt1, 3);
  EXPECT_EQ(w.r(), 8u);
}

TEST(Kernel, InjectableBitsByUnit) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 32);
  ctx.wire("b", "iu.alu", 4);
  ctx.reg("c", "cmem.dcache", 1);
  EXPECT_EQ(ctx.injectable_bits("iu"), 36u);
  EXPECT_EQ(ctx.injectable_bits("iu.alu"), 36u);
  EXPECT_EQ(ctx.injectable_bits("cmem"), 1u);
  EXPECT_EQ(ctx.injectable_bits(), 37u);
}

TEST(Kernel, UnitPrefixIsComponentWise) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 8);
  ctx.wire("b", "iu.aluX", 8);  // must NOT match prefix "iu.alu"
  EXPECT_EQ(ctx.nodes_in_unit("iu.alu").size(), 1u);
  EXPECT_EQ(ctx.nodes_in_unit("iu").size(), 2u);
}

TEST(Kernel, NodesInUnitReturnsIds) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 8);
  ctx.reg("b", "cmem.icache", 8);
  const auto iu = ctx.nodes_in_unit("iu");
  ASSERT_EQ(iu.size(), 1u);
  EXPECT_EQ(ctx.name(iu[0]), "a");
}

TEST(Kernel, ZeroAllResetsValuesNotFaults) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(123);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 0);
  ctx.zero_all();
  EXPECT_EQ(w.r(), 1u);  // value cleared, stuck bit still applied
}

TEST(Kernel, SnapshotRoundTrip) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  Sig r = ctx.reg("r", "iu.special", 16);
  Sig b = ctx.wire("b", "cmem.icache", 1);
  w.w(0xCAFEBABE);
  r.poke(0x1234);
  b.w(1);
  const std::vector<u32> snap = ctx.save_values();
  EXPECT_TRUE(ctx.values_equal(snap));

  w.w(0);
  r.n(0x4321);
  ctx.commit_all();
  b.w(0);
  EXPECT_FALSE(ctx.values_equal(snap));

  ctx.load_values(snap);
  EXPECT_TRUE(ctx.values_equal(snap));
  EXPECT_EQ(w.r(), 0xCAFEBABEu);
  EXPECT_EQ(r.r(), 0x1234u);
  EXPECT_EQ(b.r(), 1u);
  // Registers restored at a cycle boundary hold their value (cur == nxt).
  ctx.commit_all();
  EXPECT_EQ(r.r(), 0x1234u);
  EXPECT_TRUE(ctx.values_equal(snap));
}

TEST(Kernel, SnapshotSizeMismatchRejected) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  std::vector<u32> snap = ctx.save_values();
  snap.push_back(0);
  EXPECT_FALSE(ctx.values_equal(snap));
  EXPECT_THROW(ctx.load_values(snap), std::invalid_argument);
}

TEST(Kernel, FindNodeUsesFirstRegistration) {
  SimContext ctx;
  ctx.wire("tag0", "cmem.icache", 20);
  ctx.wire("other", "iu.alu", 32);
  ctx.wire("tag0", "cmem.dcache", 20);  // duplicate name, different unit
  const auto id = ctx.find_node("tag0");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 0u);  // linear-scan semantics: first registered wins
  EXPECT_EQ(ctx.unit(*id), "cmem.icache");
  EXPECT_FALSE(ctx.find_node("nonexistent").has_value());
}

// ---- replica lanes (batched evaluation) ----------------------------------

TEST(Lanes, NewLanesStartAsCopiesOfLaneZero) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  Sig r = ctx.reg("r", "iu.special", 32);
  w.w(7);
  r.poke(9);
  ctx.set_replicas(3);
  for (std::size_t lane = 0; lane < 3; ++lane) {
    ctx.set_active_lane(lane);
    EXPECT_EQ(w.r(), 7u) << lane;
    EXPECT_EQ(r.r(), 9u) << lane;
  }
}

TEST(Lanes, LanesEvolveIndependently) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  ctx.set_replicas(2);
  r.n(11);
  ctx.commit_all();  // commits the active lane (0) only
  EXPECT_EQ(r.r(), 11u);
  ctx.set_active_lane(1);
  EXPECT_EQ(r.r(), 0u) << "lane 1 must not see lane 0's commit";
  r.n(22);
  ctx.commit_all();
  EXPECT_EQ(r.r(), 22u);
  ctx.set_active_lane(0);
  EXPECT_EQ(r.r(), 11u);
}

TEST(Lanes, FaultsArePerLane) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 8);
  ctx.set_replicas(2);
  w.w(0);
  ctx.set_active_lane(1);
  w.w(0);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 3);
  EXPECT_EQ(w.r(), 0x08u);
  ctx.set_active_lane(0);
  EXPECT_EQ(w.r(), 0u) << "lane 0 must not see lane 1's overlay";
  w.w(0xFF);  // write-through on the unfaulted lane
  EXPECT_EQ(w.r(), 0xFFu);
  ctx.set_active_lane(1);
  EXPECT_EQ(w.r(), 0x08u) << "lane 1's overlay survives lane 0 writes";
  ctx.clear_faults();  // clears the active lane's faults only
  EXPECT_EQ(w.r(), 0u);
}

TEST(Lanes, CopyLaneReplicatesValuesAndOverlays) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 8);
  ctx.set_replicas(2);
  w.w(0x0F);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  EXPECT_EQ(w.r(), 0x0Eu);
  ctx.copy_lane(1, 0);
  ctx.set_active_lane(1);
  EXPECT_EQ(w.r(), 0x0Eu) << "overlay must ride along with the copy";
  w.w(0xFF);
  EXPECT_EQ(w.r(), 0xFEu) << "copied overlay stays armed in the new lane";
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0xFFu);
  ctx.set_active_lane(0);
  EXPECT_EQ(w.r(), 0x0Eu) << "source lane untouched by the copy";
}

TEST(Lanes, SaveLoadCompareActOnActiveLane) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  ctx.set_replicas(2);
  r.poke(5);
  const auto snap = ctx.save_values();
  ctx.set_active_lane(1);
  EXPECT_FALSE(ctx.values_equal(snap));
  ctx.load_values(snap);
  EXPECT_TRUE(ctx.values_equal(snap));
  EXPECT_EQ(r.r(), 5u);
}

TEST(Lanes, RegistryFrozenWhileReplicated) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.set_replicas(2);
  EXPECT_THROW(ctx.wire("late", "iu.alu", 32), std::logic_error);
  ctx.set_replicas(1);  // shrink back: registration reopens
  ctx.wire("late", "iu.alu", 32);
  EXPECT_EQ(ctx.node_count(), 2u);
}

TEST(Lanes, SetReplicasRejectsArmedFaults) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 0);
  EXPECT_THROW(ctx.set_replicas(2), std::logic_error);
  ctx.clear_faults();
  ctx.set_replicas(2);
  EXPECT_EQ(ctx.replicas(), 2u);
  EXPECT_THROW(ctx.set_active_lane(2), std::out_of_range);
  EXPECT_THROW(ctx.copy_lane(2, 0), std::out_of_range);
}

TEST(Lanes, LayoutChangeDrainsPendingSparseCommits) {
  // Recorded sparse-commit slots are layout-relative. A pending Sig::ns()
  // write at set_replicas/set_lane_layout time must land (drained under
  // the old geometry), not vanish or be applied to a re-tiled array where
  // the stale flat slot addresses a different node entirely.
  SimContext ctx;
  ctx.wire("pad0", "iu.alu", 32);  // displace the sparse reg from slot 0
  ctx.wire("pad1", "iu.alu", 32);
  Sig r = ctx.reg_sparse("r", "iu.regfile", 32);
  r.ns(0xDEADBEEFu);
  ctx.set_replicas(9, LaneLayout::kTiled);  // layout change, pending write
  Sig r2 = ctx.node(r.id());                // handles re-mint on re-tile
  EXPECT_EQ(r2.r(), 0xDEADBEEFu);
  for (std::size_t lane = 1; lane < 9; ++lane) {
    ctx.set_active_lane(lane);
    EXPECT_EQ(ctx.node(r.id()).r(), 0xDEADBEEFu) << lane;  // copied lane 0
  }
  ctx.set_active_lane(0);
  ctx.node(r.id()).ns(0x1234u);
  ctx.set_lane_layout(LaneLayout::kFlat);  // pending write again
  EXPECT_EQ(ctx.node(r.id()).r(), 0x1234u);
}

TEST(Lanes, PermuteLanesMovesContentOverlaysAndActive) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.ex", 32);
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.set_replicas(4, LaneLayout::kTiled);
  for (std::size_t l = 0; l < 4; ++l) {
    ctx.set_active_lane(l);
    ctx.node(r.id()).n(0x100u + static_cast<u32>(l));
  }
  ctx.commit_lanes();  // clock every lane, not just the active one
  ctx.set_active_lane(2);
  ctx.arm_fault(w.id(), FaultModel::kStuckAt1, 3);  // overlay rides lane 2
  ctx.node(w.id()).w(0);
  ASSERT_EQ(ctx.node(w.id()).r(), 8u);

  // Rotate: lane d receives old lane (d + 1) % 4.
  ctx.permute_lanes({1, 2, 3, 0});
  // The active lane follows its content: old lane 2 now lives in slot 1.
  EXPECT_EQ(ctx.active_lane(), 1u);
  for (std::size_t d = 0; d < 4; ++d) {
    ctx.set_active_lane(d);
    EXPECT_EQ(ctx.node(r.id()).r(), 0x100u + ((d + 1) % 4)) << d;
    // The stuck-at overlay moved with its lane (re-applied post-permute).
    ctx.node(w.id()).w(0);
    EXPECT_EQ(ctx.node(w.id()).r(), d == 1 ? 8u : 0u) << d;
  }

  // Validation: wrong size and non-permutations are rejected.
  EXPECT_THROW(ctx.permute_lanes({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(ctx.permute_lanes({0, 1, 1, 3}), std::invalid_argument);
  EXPECT_THROW(ctx.permute_lanes({0, 1, 2, 4}), std::invalid_argument);
}

// ---- differential fuzz: tiled lane-slice primitives vs the flat path -----
//
// Two contexts with identical registries, one replicated flat and one as
// lane-interleaved tiles, driven by one random operation stream (writes,
// sparse commits, ranged copies/zeroes, per-lane and masked all-lane
// commits, lane clones, every fault model, save/load/compare probes). After
// every commit, every lane of the tiled context must be bit-identical to
// the flat one — the vectorized commit_lanes pass, the strided probes and
// the overlay re-application may differ only in memory order, never in
// value. `tile` selects the tiled context's tile width (0 = the context
// default); with `midstream_retile` the tiled context additionally
// round-trips its own layout (through kFlat and the other tile width)
// every few steps *between* armed overlays and masked commits, so the
// retile paths are exercised against live pending shadows and fault
// overlays, not just at the end.
void run_lane_fuzz(std::size_t tile, u64 fuzz_seed, bool midstream_retile) {
  constexpr std::size_t kLanes = 11;   // crosses a tile boundary, odd count
  constexpr std::size_t kBlock = 16;   // contiguous 32-bit regs (latch-like)
  constexpr int kSteps = 400;

  struct Ctx {
    SimContext sim;
    std::vector<NodeId> regs, wires, sparse;
    NodeId block0 = 0;
  };
  auto build = [&](Ctx& c) {
    for (unsigned i = 0; i < 6; ++i) {
      c.wires.push_back(
          c.sim.wire("w" + std::to_string(i), "iu.alu", i % 2 ? 32 : 9).id());
    }
    Sig b0 = c.sim.reg("blk0", "iu.ex", 32);
    c.block0 = b0.id();
    c.regs.push_back(b0.id());
    for (unsigned i = 1; i < kBlock; ++i) {
      c.regs.push_back(c.sim.reg("blk" + std::to_string(i), "iu.ex", 32).id());
    }
    for (unsigned i = 0; i < 5; ++i) {
      c.sparse.push_back(
          c.sim.reg_sparse("sp" + std::to_string(i), "iu.regfile", 32).id());
    }
    for (unsigned i = 0; i < 4; ++i) {
      c.regs.push_back(
          c.sim.reg("r" + std::to_string(i), "iu.special", i % 2 ? 32 : 5)
              .id());
    }
  };
  Ctx flat, tiled;
  build(flat);
  build(tiled);
  flat.sim.set_replicas(kLanes, LaneLayout::kFlat);
  tiled.sim.set_replicas(kLanes, LaneLayout::kTiled, tile);
  ASSERT_EQ(tiled.sim.lane_layout(), LaneLayout::kTiled);

  Xoshiro256 rng(fuzz_seed);
  auto pick = [&](std::size_t n) {
    return static_cast<std::size_t>(rng.next_below(n));
  };

  std::vector<std::vector<u32>> snaps(kLanes);  // shared probe captures
  auto check_all_lanes = [&](int step) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      flat.sim.set_active_lane(l);
      tiled.sim.set_active_lane(l);
      const auto a = flat.sim.save_values();
      const auto b = tiled.sim.save_values();
      ASSERT_EQ(a, b) << "lane " << l << " diverged at step " << step;
      // The probe primitive itself must agree with the capture on both.
      EXPECT_TRUE(flat.sim.values_equal(a));
      EXPECT_TRUE(tiled.sim.values_equal(a));
    }
  };

  for (int step = 0; step < kSteps; ++step) {
    const std::size_t lane = pick(kLanes);
    flat.sim.set_active_lane(lane);
    tiled.sim.set_active_lane(lane);
    // A burst of mutations on the active lane, mirrored on both contexts.
    for (int op = 0; op < 6; ++op) {
      const u32 v = static_cast<u32>(rng.next());
      switch (pick(8)) {
        case 0: {  // wire write-through
          const NodeId id = flat.wires[pick(flat.wires.size())];
          flat.sim.node(id).w(v);
          tiled.sim.node(id).w(v);
          break;
        }
        case 1: {  // register next
          const NodeId id = flat.regs[pick(flat.regs.size())];
          flat.sim.node(id).n(v);
          tiled.sim.node(id).n(v);
          break;
        }
        case 2: {  // sparse-register next (dirty-list commit path)
          const NodeId id = flat.sparse[pick(flat.sparse.size())];
          flat.sim.node(id).ns(v);
          tiled.sim.node(id).ns(v);
          break;
        }
        case 3: {  // ranged latch copy within the 32-bit block
          const std::size_t count = 1 + pick(kBlock / 2);
          const NodeId dst = flat.block0 + static_cast<NodeId>(pick(kBlock - count));
          const NodeId src = flat.block0 + static_cast<NodeId>(pick(kBlock - count));
          flat.sim.copy_next_range(dst, src, count);
          tiled.sim.copy_next_range(dst, src, count);
          break;
        }
        case 4: {  // ranged zero within the block
          const std::size_t count = 1 + pick(kBlock - 1);
          const NodeId at = flat.block0 + static_cast<NodeId>(pick(kBlock - count));
          flat.sim.zero_next_range(at, count);
          tiled.sim.zero_next_range(at, count);
          break;
        }
        case 5: {  // arm a random fault model (if the slot is free)
          const bool on_wire = pick(2) == 0;
          const NodeId id = on_wire ? flat.wires[pick(flat.wires.size())]
                                    : flat.regs[pick(flat.regs.size())];
          const u8 bit = static_cast<u8>(pick(flat.sim.width(id)));
          const auto model =
              std::array{FaultModel::kStuckAt0, FaultModel::kStuckAt1,
                         FaultModel::kOpenLine,
                         FaultModel::kTransientBitFlip}[pick(4)];
          try {
            flat.sim.arm_fault(id, model, bit);
          } catch (const std::logic_error&) {
            break;  // already armed on this lane: skip on both
          }
          tiled.sim.arm_fault(id, model, bit);
          break;
        }
        case 6: {  // bridge fault wire -> block reg
          const NodeId victim = flat.wires[pick(flat.wires.size())];
          const NodeId aggressor =
              flat.block0 + static_cast<NodeId>(pick(kBlock));
          const u32 mask =
              (v & flat.sim.width(victim)) != 0 ? (1u << pick(flat.sim.width(victim))) : 1u;
          try {
            flat.sim.arm_bridge(victim, aggressor, mask);
          } catch (const std::logic_error&) {
            break;
          }
          tiled.sim.arm_bridge(victim, aggressor, mask);
          break;
        }
        default: {  // clear the active lane's faults
          flat.sim.clear_faults();
          tiled.sim.clear_faults();
          break;
        }
      }
    }
    // Clock edge: alternate the three commit flavours.
    switch (step % 3) {
      case 0: {
        flat.sim.commit_all();
        tiled.sim.commit_all();
        break;
      }
      case 1: {  // masked all-lane pass over a random live set
        std::vector<u8> live(kLanes, 0);
        live[lane] = 1;
        live[pick(kLanes)] = 1;
        flat.sim.commit_lanes(live);
        tiled.sim.commit_lanes(live);
        break;
      }
      default: {
        flat.sim.commit_lanes();
        tiled.sim.commit_lanes();
        break;
      }
    }
    // Occasionally clone lanes / round-trip snapshots, mirrored.
    if (step % 17 == 0) {
      const std::size_t dst = pick(kLanes), src = pick(kLanes);
      flat.sim.copy_lane(dst, src);
      tiled.sim.copy_lane(dst, src);
    }
    if (step % 19 == 7) {
      // Random lane permutation: either mirrored on both contexts, or
      // applied to the tiled context and immediately inverted — both must
      // leave every lane (values, armed overlays, pending shadows) bit-
      // identical to the flat context at the check below.
      std::vector<std::size_t> perm(kLanes);
      for (std::size_t i = 0; i < kLanes; ++i) perm[i] = i;
      for (std::size_t i = kLanes - 1; i > 0; --i) {
        std::swap(perm[i], perm[pick(i + 1)]);
      }
      if (step % 2 == 0) {
        flat.sim.permute_lanes(perm);
        tiled.sim.permute_lanes(perm);
      } else {
        std::vector<std::size_t> inv(kLanes);
        for (std::size_t d = 0; d < kLanes; ++d) inv[perm[d]] = d;
        tiled.sim.permute_lanes(perm);
        tiled.sim.permute_lanes(inv);
      }
    }
    if (midstream_retile && step % 29 == 13) {
      // Retile round-trip between mutations: through the flat layout and
      // the other tile width, back to the fuzzed width — with whatever
      // armed overlays and pending shadows the stream has built up riding
      // along. The flat-vs-tiled check below runs right after, so any
      // value, flag or overlay the transpose drops is caught immediately.
      const std::size_t here = tiled.sim.lane_tile();
      const std::size_t other = here == 16 ? 8 : 16;
      if (step % 2 == 0) {
        tiled.sim.set_lane_layout(LaneLayout::kFlat);
      } else {
        tiled.sim.set_lane_layout(LaneLayout::kTiled, other);
      }
      tiled.sim.set_lane_layout(LaneLayout::kTiled, here);
    }
    if (step % 23 == 0) {
      flat.sim.save_values_into(snaps[lane]);
      ASSERT_TRUE(tiled.sim.values_equal(snaps[lane]))
          << "tiled lane must equal the flat capture";
    }
    check_all_lanes(step);
  }

  // Finally: layout and tile-width round-trips (tiled -> flat ->
  // tiled/16 -> tiled/4 -> tiled/8) must preserve every lane and every
  // armed overlay bit-for-bit at each stop.
  tiled.sim.set_lane_layout(LaneLayout::kFlat);
  tiled.sim.set_lane_layout(LaneLayout::kTiled, 16);
  check_all_lanes(kSteps);
  tiled.sim.set_lane_layout(LaneLayout::kTiled, 4);
  tiled.sim.set_lane_layout(LaneLayout::kTiled, 8);
  check_all_lanes(kSteps + 1);
}

TEST(LaneFuzz, TiledPrimitivesMatchFlatBitForBit) {
  run_lane_fuzz(0, 0xF00DF00Dull, false);
}

// The 16-wide tile is the AVX-512 operating point of the vector evaluator
// (rtl/veceval.cpp engages the masked 512-bit kernel only at lane_tile 16),
// so the same differential stream runs again at that width with midstream
// retile round-trips folded between the armed overlays and masked commits.
TEST(LaneFuzz, Tile16PrimitivesAndRetilesMatchFlatBitForBit) {
  run_lane_fuzz(16, 0xBEEFCAFEull, true);
}

TEST(Vcd, ProducesParsableFile) {
  SimContext ctx;
  Sig a = ctx.wire("alu_res", "iu.alu", 32);
  Sig b = ctx.reg("valid", "iu.de", 1);
  const std::string path = ::testing::TempDir() + "issrtl_test.vcd";
  {
    VcdWriter vcd(path, ctx);
    a.w(5);
    b.poke(1);
    vcd.sample(0);
    a.w(6);
    vcd.sample(1);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(all.find("alu_res"), std::string::npos);
  EXPECT_NE(all.find("#0"), std::string::npos);
  EXPECT_NE(all.find("#1"), std::string::npos);
  std::remove(path.c_str());
}

// ---- saboteur-style multi-bit and bridge faults (related work [2]) -------

TEST(Saboteur, MultiBitStuckAt) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0x000000F0);
  w.w(0);
  EXPECT_EQ(w.r(), 0xF0u);
  ctx.clear_faults();
  ctx.arm_fault_mask(0, FaultModel::kStuckAt0, 0xFF000000);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0x00FFFFFFu);
}

TEST(Saboteur, MultiBitOpenLineFreezesPattern) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0xA0);  // bits 5 and 7 high inside the mask
  ctx.arm_fault_mask(0, FaultModel::kOpenLine, 0xF0);
  w.w(0x50);
  EXPECT_EQ(w.r(), 0xA0u);  // masked bits frozen at 0xA0 pattern
  w.w(0x0F);
  EXPECT_EQ(w.r(), 0xAFu);
}

TEST(Saboteur, MultiBitTransientFlipsAllMaskedBits) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.poke(0x3);
  ctx.arm_fault_mask(0, FaultModel::kTransientBitFlip, 0xF);
  EXPECT_EQ(r.r(), 0xCu);
}

TEST(Saboteur, BridgeShortsToAggressor) {
  SimContext ctx;
  Sig victim = ctx.wire("v", "iu.alu", 32);
  Sig aggressor = ctx.wire("a", "iu.alu", 32);
  ctx.arm_bridge(0, 1, 0x0000FFFF);
  aggressor.w(0x1234ABCD);
  victim.w(0x55550000);
  EXPECT_EQ(victim.r(), 0x5555ABCDu);  // low half shorted to aggressor
  ctx.clear_faults();
  EXPECT_EQ(victim.r(), 0x55550000u);
}

TEST(Saboteur, BridgeTracksAggressorDynamically) {
  SimContext ctx;
  Sig victim = ctx.wire("v", "iu.alu", 8);
  Sig aggressor = ctx.wire("a", "iu.alu", 8);
  ctx.arm_bridge(0, 1, 0xFF);
  victim.w(0);
  aggressor.w(0x11);
  EXPECT_EQ(victim.r(), 0x11u);
  aggressor.w(0x22);
  EXPECT_EQ(victim.r(), 0x22u);
}

TEST(Saboteur, Validation) {
  SimContext ctx;
  ctx.wire("v", "iu.alu", 8);
  ctx.wire("a", "iu.alu", 8);
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0x100),
               std::out_of_range);                       // beyond width
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0),
               std::out_of_range);                       // empty mask
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kBridge, 1),
               std::invalid_argument);                   // wrong API
  EXPECT_THROW(ctx.arm_bridge(0, 0, 1), std::invalid_argument);  // self
  ctx.arm_bridge(0, 1, 0xFF);
  EXPECT_THROW(ctx.arm_bridge(0, 1, 0x0F), std::logic_error);    // occupied
}

// Property: for every model, a faulted read differs from the raw value in at
// most the targeted bit.
class OverlayProperty : public ::testing::TestWithParam<int> {};

TEST_P(OverlayProperty, OnlyTargetBitAffected) {
  const auto model = static_cast<FaultModel>(GetParam());
  for (u8 bit = 0; bit < 32; ++bit) {
    SimContext ctx;
    Sig w = ctx.wire("w", "iu.alu", 32);
    w.w(0xA5A5A5A5);
    ctx.arm_fault(0, model, bit);
    for (const u32 v : {0u, 0xFFFFFFFFu, 0xA5A5A5A5u, 0x5A5A5A5Au}) {
      w.w(v);
      const u32 diff = w.r() ^ (model == FaultModel::kTransientBitFlip
                                    ? w.raw()
                                    : v);
      EXPECT_EQ(diff & ~(1u << bit), 0u)
          << fault_model_name(model) << " bit " << int(bit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, OverlayProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace issrtl::rtl

// Unit tests for the RTL modelling kernel: node registry, fault overlays,
// two-phase register semantics and VCD output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "rtl/kernel.hpp"
#include "rtl/vcd.hpp"

namespace issrtl::rtl {
namespace {

TEST(Kernel, WireWriteReadImmediate) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0xDEADBEEF);
  EXPECT_EQ(w.r(), 0xDEADBEEFu);
}

TEST(Kernel, WidthMasking) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 4);
  w.w(0xFF);
  EXPECT_EQ(w.r(), 0xFu);
  Sig b = ctx.wire("b", "iu.alu", 1);
  b.w(2);
  EXPECT_EQ(b.r(), 0u);
}

TEST(Kernel, RegisterTwoPhase) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.n(42);
  EXPECT_EQ(r.r(), 0u);  // not visible before the clock edge
  ctx.commit_all();
  EXPECT_EQ(r.r(), 42u);
}

TEST(Kernel, RegisterHoldsWithoutWrite) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.n(7);
  ctx.commit_all();
  ctx.commit_all();
  ctx.commit_all();
  EXPECT_EQ(r.r(), 7u);
}

TEST(Kernel, StuckAt1ForcesBit) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 5);
  w.w(0);
  EXPECT_EQ(w.r(), 32u);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFFFu);
}

TEST(Kernel, StuckAt0ForcesBit) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFFEu);
}

TEST(Kernel, OpenLineFreezesArmTimeValue) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0x10);                                  // bit 4 high at injection
  ctx.arm_fault(0, FaultModel::kOpenLine, 4);
  w.w(0);
  EXPECT_EQ(w.r(), 0x10u);                    // bit stays high
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0u);
}

TEST(Kernel, OpenLineFreezesZero) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kOpenLine, 4); // bit low at injection
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0xFFFFFFEFu);
}

TEST(Kernel, TransientFlipIsOneShot) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.poke(8);
  ctx.arm_fault(0, FaultModel::kTransientBitFlip, 3);
  EXPECT_EQ(r.r(), 0u);       // flipped now
  r.n(8);
  ctx.commit_all();
  EXPECT_EQ(r.r(), 8u);       // overwritten value is clean
}

TEST(Kernel, DoubleFaultOnNodeRejected) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  EXPECT_THROW(ctx.arm_fault(0, FaultModel::kStuckAt1, 1), std::logic_error);
}

TEST(Kernel, BitRangeChecked) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 4);
  EXPECT_THROW(ctx.arm_fault(0, FaultModel::kStuckAt0, 4), std::out_of_range);
}

TEST(Kernel, ClearFaultsRestores) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 7);
  EXPECT_EQ(w.r(), 128u);
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0u);
  // Can re-arm after clearing.
  ctx.arm_fault(0, FaultModel::kStuckAt1, 3);
  EXPECT_EQ(w.r(), 8u);
}

TEST(Kernel, InjectableBitsByUnit) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 32);
  ctx.wire("b", "iu.alu", 4);
  ctx.reg("c", "cmem.dcache", 1);
  EXPECT_EQ(ctx.injectable_bits("iu"), 36u);
  EXPECT_EQ(ctx.injectable_bits("iu.alu"), 36u);
  EXPECT_EQ(ctx.injectable_bits("cmem"), 1u);
  EXPECT_EQ(ctx.injectable_bits(), 37u);
}

TEST(Kernel, UnitPrefixIsComponentWise) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 8);
  ctx.wire("b", "iu.aluX", 8);  // must NOT match prefix "iu.alu"
  EXPECT_EQ(ctx.nodes_in_unit("iu.alu").size(), 1u);
  EXPECT_EQ(ctx.nodes_in_unit("iu").size(), 2u);
}

TEST(Kernel, NodesInUnitReturnsIds) {
  SimContext ctx;
  ctx.wire("a", "iu.alu", 8);
  ctx.reg("b", "cmem.icache", 8);
  const auto iu = ctx.nodes_in_unit("iu");
  ASSERT_EQ(iu.size(), 1u);
  EXPECT_EQ(ctx.name(iu[0]), "a");
}

TEST(Kernel, ZeroAllResetsValuesNotFaults) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(123);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 0);
  ctx.zero_all();
  EXPECT_EQ(w.r(), 1u);  // value cleared, stuck bit still applied
}

TEST(Kernel, SnapshotRoundTrip) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  Sig r = ctx.reg("r", "iu.special", 16);
  Sig b = ctx.wire("b", "cmem.icache", 1);
  w.w(0xCAFEBABE);
  r.poke(0x1234);
  b.w(1);
  const std::vector<u32> snap = ctx.save_values();
  EXPECT_TRUE(ctx.values_equal(snap));

  w.w(0);
  r.n(0x4321);
  ctx.commit_all();
  b.w(0);
  EXPECT_FALSE(ctx.values_equal(snap));

  ctx.load_values(snap);
  EXPECT_TRUE(ctx.values_equal(snap));
  EXPECT_EQ(w.r(), 0xCAFEBABEu);
  EXPECT_EQ(r.r(), 0x1234u);
  EXPECT_EQ(b.r(), 1u);
  // Registers restored at a cycle boundary hold their value (cur == nxt).
  ctx.commit_all();
  EXPECT_EQ(r.r(), 0x1234u);
  EXPECT_TRUE(ctx.values_equal(snap));
}

TEST(Kernel, SnapshotSizeMismatchRejected) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  std::vector<u32> snap = ctx.save_values();
  snap.push_back(0);
  EXPECT_FALSE(ctx.values_equal(snap));
  EXPECT_THROW(ctx.load_values(snap), std::invalid_argument);
}

TEST(Kernel, FindNodeUsesFirstRegistration) {
  SimContext ctx;
  ctx.wire("tag0", "cmem.icache", 20);
  ctx.wire("other", "iu.alu", 32);
  ctx.wire("tag0", "cmem.dcache", 20);  // duplicate name, different unit
  const auto id = ctx.find_node("tag0");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 0u);  // linear-scan semantics: first registered wins
  EXPECT_EQ(ctx.unit(*id), "cmem.icache");
  EXPECT_FALSE(ctx.find_node("nonexistent").has_value());
}

// ---- replica lanes (batched evaluation) ----------------------------------

TEST(Lanes, NewLanesStartAsCopiesOfLaneZero) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  Sig r = ctx.reg("r", "iu.special", 32);
  w.w(7);
  r.poke(9);
  ctx.set_replicas(3);
  for (std::size_t lane = 0; lane < 3; ++lane) {
    ctx.set_active_lane(lane);
    EXPECT_EQ(w.r(), 7u) << lane;
    EXPECT_EQ(r.r(), 9u) << lane;
  }
}

TEST(Lanes, LanesEvolveIndependently) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  ctx.set_replicas(2);
  r.n(11);
  ctx.commit_all();  // commits the active lane (0) only
  EXPECT_EQ(r.r(), 11u);
  ctx.set_active_lane(1);
  EXPECT_EQ(r.r(), 0u) << "lane 1 must not see lane 0's commit";
  r.n(22);
  ctx.commit_all();
  EXPECT_EQ(r.r(), 22u);
  ctx.set_active_lane(0);
  EXPECT_EQ(r.r(), 11u);
}

TEST(Lanes, FaultsArePerLane) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 8);
  ctx.set_replicas(2);
  w.w(0);
  ctx.set_active_lane(1);
  w.w(0);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 3);
  EXPECT_EQ(w.r(), 0x08u);
  ctx.set_active_lane(0);
  EXPECT_EQ(w.r(), 0u) << "lane 0 must not see lane 1's overlay";
  w.w(0xFF);  // write-through on the unfaulted lane
  EXPECT_EQ(w.r(), 0xFFu);
  ctx.set_active_lane(1);
  EXPECT_EQ(w.r(), 0x08u) << "lane 1's overlay survives lane 0 writes";
  ctx.clear_faults();  // clears the active lane's faults only
  EXPECT_EQ(w.r(), 0u);
}

TEST(Lanes, CopyLaneReplicatesValuesAndOverlays) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 8);
  ctx.set_replicas(2);
  w.w(0x0F);
  ctx.arm_fault(0, FaultModel::kStuckAt0, 0);
  EXPECT_EQ(w.r(), 0x0Eu);
  ctx.copy_lane(1, 0);
  ctx.set_active_lane(1);
  EXPECT_EQ(w.r(), 0x0Eu) << "overlay must ride along with the copy";
  w.w(0xFF);
  EXPECT_EQ(w.r(), 0xFEu) << "copied overlay stays armed in the new lane";
  ctx.clear_faults();
  EXPECT_EQ(w.r(), 0xFFu);
  ctx.set_active_lane(0);
  EXPECT_EQ(w.r(), 0x0Eu) << "source lane untouched by the copy";
}

TEST(Lanes, SaveLoadCompareActOnActiveLane) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  ctx.set_replicas(2);
  r.poke(5);
  const auto snap = ctx.save_values();
  ctx.set_active_lane(1);
  EXPECT_FALSE(ctx.values_equal(snap));
  ctx.load_values(snap);
  EXPECT_TRUE(ctx.values_equal(snap));
  EXPECT_EQ(r.r(), 5u);
}

TEST(Lanes, RegistryFrozenWhileReplicated) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.set_replicas(2);
  EXPECT_THROW(ctx.wire("late", "iu.alu", 32), std::logic_error);
  ctx.set_replicas(1);  // shrink back: registration reopens
  ctx.wire("late", "iu.alu", 32);
  EXPECT_EQ(ctx.node_count(), 2u);
}

TEST(Lanes, SetReplicasRejectsArmedFaults) {
  SimContext ctx;
  ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault(0, FaultModel::kStuckAt1, 0);
  EXPECT_THROW(ctx.set_replicas(2), std::logic_error);
  ctx.clear_faults();
  ctx.set_replicas(2);
  EXPECT_EQ(ctx.replicas(), 2u);
  EXPECT_THROW(ctx.set_active_lane(2), std::out_of_range);
  EXPECT_THROW(ctx.copy_lane(2, 0), std::out_of_range);
}

TEST(Vcd, ProducesParsableFile) {
  SimContext ctx;
  Sig a = ctx.wire("alu_res", "iu.alu", 32);
  Sig b = ctx.reg("valid", "iu.de", 1);
  const std::string path = ::testing::TempDir() + "issrtl_test.vcd";
  {
    VcdWriter vcd(path, ctx);
    a.w(5);
    b.poke(1);
    vcd.sample(0);
    a.w(6);
    vcd.sample(1);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(all.find("alu_res"), std::string::npos);
  EXPECT_NE(all.find("#0"), std::string::npos);
  EXPECT_NE(all.find("#1"), std::string::npos);
  std::remove(path.c_str());
}

// ---- saboteur-style multi-bit and bridge faults (related work [2]) -------

TEST(Saboteur, MultiBitStuckAt) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0x000000F0);
  w.w(0);
  EXPECT_EQ(w.r(), 0xF0u);
  ctx.clear_faults();
  ctx.arm_fault_mask(0, FaultModel::kStuckAt0, 0xFF000000);
  w.w(0xFFFFFFFF);
  EXPECT_EQ(w.r(), 0x00FFFFFFu);
}

TEST(Saboteur, MultiBitOpenLineFreezesPattern) {
  SimContext ctx;
  Sig w = ctx.wire("w", "iu.alu", 32);
  w.w(0xA0);  // bits 5 and 7 high inside the mask
  ctx.arm_fault_mask(0, FaultModel::kOpenLine, 0xF0);
  w.w(0x50);
  EXPECT_EQ(w.r(), 0xA0u);  // masked bits frozen at 0xA0 pattern
  w.w(0x0F);
  EXPECT_EQ(w.r(), 0xAFu);
}

TEST(Saboteur, MultiBitTransientFlipsAllMaskedBits) {
  SimContext ctx;
  Sig r = ctx.reg("r", "iu.special", 32);
  r.poke(0x3);
  ctx.arm_fault_mask(0, FaultModel::kTransientBitFlip, 0xF);
  EXPECT_EQ(r.r(), 0xCu);
}

TEST(Saboteur, BridgeShortsToAggressor) {
  SimContext ctx;
  Sig victim = ctx.wire("v", "iu.alu", 32);
  Sig aggressor = ctx.wire("a", "iu.alu", 32);
  ctx.arm_bridge(0, 1, 0x0000FFFF);
  aggressor.w(0x1234ABCD);
  victim.w(0x55550000);
  EXPECT_EQ(victim.r(), 0x5555ABCDu);  // low half shorted to aggressor
  ctx.clear_faults();
  EXPECT_EQ(victim.r(), 0x55550000u);
}

TEST(Saboteur, BridgeTracksAggressorDynamically) {
  SimContext ctx;
  Sig victim = ctx.wire("v", "iu.alu", 8);
  Sig aggressor = ctx.wire("a", "iu.alu", 8);
  ctx.arm_bridge(0, 1, 0xFF);
  victim.w(0);
  aggressor.w(0x11);
  EXPECT_EQ(victim.r(), 0x11u);
  aggressor.w(0x22);
  EXPECT_EQ(victim.r(), 0x22u);
}

TEST(Saboteur, Validation) {
  SimContext ctx;
  ctx.wire("v", "iu.alu", 8);
  ctx.wire("a", "iu.alu", 8);
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0x100),
               std::out_of_range);                       // beyond width
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kStuckAt1, 0),
               std::out_of_range);                       // empty mask
  EXPECT_THROW(ctx.arm_fault_mask(0, FaultModel::kBridge, 1),
               std::invalid_argument);                   // wrong API
  EXPECT_THROW(ctx.arm_bridge(0, 0, 1), std::invalid_argument);  // self
  ctx.arm_bridge(0, 1, 0xFF);
  EXPECT_THROW(ctx.arm_bridge(0, 1, 0x0F), std::logic_error);    // occupied
}

// Property: for every model, a faulted read differs from the raw value in at
// most the targeted bit.
class OverlayProperty : public ::testing::TestWithParam<int> {};

TEST_P(OverlayProperty, OnlyTargetBitAffected) {
  const auto model = static_cast<FaultModel>(GetParam());
  for (u8 bit = 0; bit < 32; ++bit) {
    SimContext ctx;
    Sig w = ctx.wire("w", "iu.alu", 32);
    w.w(0xA5A5A5A5);
    ctx.arm_fault(0, model, bit);
    for (const u32 v : {0u, 0xFFFFFFFFu, 0xA5A5A5A5u, 0x5A5A5A5Au}) {
      w.w(v);
      const u32 diff = w.r() ^ (model == FaultModel::kTransientBitFlip
                                    ? w.raw()
                                    : v);
      EXPECT_EQ(diff & ~(1u << bit), 0u)
          << fault_model_name(model) << " bit " << int(bit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, OverlayProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace issrtl::rtl

// Checkpoint-ladder tests: eviction policy and nearest-rung lookup on the
// container itself, then end-to-end stride invariance — a multi-instant
// campaign must produce bit-identical outcomes with the ladder disabled, at
// stride 1, and at an arbitrary stride, at any thread count (the ladder
// only changes where fault-free prefixes are resumed from, never what the
// faulty run computes).
#include <gtest/gtest.h>

#include <memory>

#include "engine/iss_backend.hpp"
#include "engine/ladder.hpp"
#include "engine/rtl_backend.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

using fault::CampaignConfig;
using fault::CampaignResult;

std::shared_ptr<const int> snap(int v) { return std::make_shared<int>(v); }

// ---- container: eviction ----------------------------------------------------

TEST(Ladder, EvictsOldestFirstUnderByteCap) {
  CheckpointLadder<int> ladder(/*stride=*/10, /*max_bytes=*/300);
  ladder.record(10, snap(1), 100);
  ladder.record(20, snap(2), 100);
  ladder.record(30, snap(3), 100);
  EXPECT_EQ(ladder.rung_count(), 3u);
  EXPECT_EQ(ladder.evicted_count(), 0u);

  // 100 bytes over cap: exactly the oldest rung goes.
  ladder.record(40, snap(4), 100);
  EXPECT_EQ(ladder.rung_count(), 3u);
  EXPECT_EQ(ladder.evicted_count(), 1u);
  EXPECT_EQ(ladder.total_bytes(), 300u);
  EXPECT_EQ(ladder.best_at_or_below(10), nullptr)
      << "evicted rung must be unreachable";
  ASSERT_NE(ladder.best_at_or_below(20), nullptr);
  EXPECT_EQ(ladder.best_at_or_below(20)->instant, 20u);

  // A big rung evicts several oldest rungs, in order: 550 bytes shrink to
  // 250 only once 20, 30 and 40 have all gone.
  ladder.record(50, snap(5), 250);
  EXPECT_EQ(ladder.rung_count(), 1u);  // only the newest survives
  EXPECT_EQ(ladder.evicted_count(), 4u);
  EXPECT_EQ(ladder.total_bytes(), 250u);
  EXPECT_EQ(ladder.best_at_or_below(49), nullptr);
  ASSERT_NE(ladder.best_at_or_below(50), nullptr);
  EXPECT_EQ(ladder.best_at_or_below(50)->instant, 50u);
}

TEST(Ladder, NewestRungSurvivesEvenWhenOverCapAlone) {
  CheckpointLadder<int> ladder(10, 100);
  ladder.record(10, snap(1), 50);
  ladder.record(20, snap(2), 400);  // alone over the cap
  EXPECT_EQ(ladder.rung_count(), 1u);
  ASSERT_NE(ladder.best_at_or_below(25), nullptr);
  EXPECT_EQ(ladder.best_at_or_below(25)->instant, 20u);
}

TEST(Ladder, AutoModeDoublesStrideByThinning) {
  // max_rungs 4: the 5th rung triggers a doubling; survivors sit on the
  // doubled grid (plus the always-kept newest rung).
  CheckpointLadder<int> ladder(10, std::size_t{1} << 30, /*max_rungs=*/4);
  for (u64 t = 10; t <= 50; t += 10) ladder.record(t, snap(1), 8);
  EXPECT_EQ(ladder.stride(), 20u);
  EXPECT_EQ(ladder.rung_count(), 3u);  // 20, 40 on the grid + newest (50)
  EXPECT_EQ(ladder.evicted_count(), 2u);  // 10 and 30 thinned
  EXPECT_EQ(ladder.best_at_or_below(39)->instant, 20u);
  EXPECT_EQ(ladder.best_at_or_below(50)->instant, 50u);
  // Recording continues on the doubled grid.
  EXPECT_FALSE(ladder.wants(70));
  EXPECT_TRUE(ladder.wants(60));
}

// ---- container: lookup ------------------------------------------------------

TEST(Ladder, NearestRungLookupAtBoundaries) {
  CheckpointLadder<int> ladder(100, std::size_t{1} << 20);
  ladder.record(100, snap(1), 10);
  ladder.record(200, snap(2), 10);
  ladder.record(300, snap(3), 10);

  EXPECT_EQ(ladder.best_at_or_below(0), nullptr);
  EXPECT_EQ(ladder.best_at_or_below(99), nullptr);
  EXPECT_EQ(ladder.best_at_or_below(100)->instant, 100u);  // exact hit
  EXPECT_EQ(ladder.best_at_or_below(101)->instant, 100u);
  EXPECT_EQ(ladder.best_at_or_below(299)->instant, 200u);
  EXPECT_EQ(ladder.best_at_or_below(300)->instant, 300u);
  EXPECT_EQ(ladder.best_at_or_below(~0ull)->instant, 300u);  // clamps to top

  EXPECT_EQ(ladder.at(100)->instant, 100u);
  EXPECT_EQ(ladder.at(150), nullptr);
  EXPECT_EQ(ladder.at(400), nullptr);
}

TEST(Ladder, DisabledLadderWantsNothing) {
  CheckpointLadder<int> ladder;  // stride 0
  EXPECT_FALSE(ladder.enabled());
  EXPECT_FALSE(ladder.wants(0));
  EXPECT_FALSE(ladder.wants(64));
  EXPECT_EQ(ladder.best_at_or_below(~0ull), nullptr);
}

TEST(Ladder, WantsOnlyOnGridAndForward) {
  CheckpointLadder<int> ladder(50, std::size_t{1} << 20);
  EXPECT_FALSE(ladder.wants(0)) << "reset state is never a rung";
  EXPECT_FALSE(ladder.wants(49));
  EXPECT_TRUE(ladder.wants(50));
  ladder.record(50, snap(1), 10);
  EXPECT_FALSE(ladder.wants(50)) << "no duplicate rungs";
  EXPECT_TRUE(ladder.wants(100));
}

// ---- stride helpers ---------------------------------------------------------

TEST(Ladder, StrideResolution) {
  EXPECT_EQ(initial_ladder_stride(0), 0u);
  EXPECT_EQ(initial_ladder_stride(kLadderStrideAuto), kAutoInitialStride);
  EXPECT_EQ(initial_ladder_stride(777), 777u);
  EXPECT_EQ(ladder_rung_limit(kLadderStrideAuto), kAutoMaxRungs);
  EXPECT_EQ(ladder_rung_limit(777), 0u);
}

// ---- end-to-end: stride invariance ------------------------------------------

using fault::outcome_hash;

// Multi-instant campaign (8 instants per site, transients + permanents so
// both the convergence cut-off and the plain restore path are exercised):
// ladder disabled, stride 1 (a rung at literally every cycle, under a byte
// cap that forces eviction) and stride 97 must agree bit-for-bit, at 1 and
// 3 threads.
TEST(Ladder, MultiInstantCampaignStrideInvariant) {
  const auto prog = workloads::build("a2time_x", {.iterations = 1,
                                                  .data_seed = 1});
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 8;
  cfg.instants_per_site = 8;
  cfg.models = {rtl::FaultModel::kTransientBitFlip, rtl::FaultModel::kStuckAt1};
  cfg.inject_time = fault::InjectTime::kUniformRandom;

  u64 reference_hash = 0;
  std::vector<fault::CampaignStats> reference_stats;
  bool have_reference = false;
  for (const unsigned threads : {1u, 3u}) {
    for (const u64 stride : {u64{0}, u64{1}, u64{97}}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.ladder_stride = stride;
      if (stride == 1) {
        // Force the byte cap into play: a rung per cycle at ~4 KiB each
        // overflows 2 MiB quickly, so eviction must not perturb outcomes.
        opts.ladder_max_bytes = std::size_t{2} << 20;
      }
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      ASSERT_EQ(r.runs.size(), cfg.samples * 8 * cfg.models.size());
      const u64 h = outcome_hash(r);
      if (!have_reference) {
        reference_hash = h;
        reference_stats = r.per_model;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(h, reference_hash) << "threads=" << threads
                                   << " stride=" << stride;
      ASSERT_EQ(r.per_model.size(), reference_stats.size());
      for (std::size_t m = 0; m < r.per_model.size(); ++m) {
        EXPECT_EQ(r.per_model[m].failures, reference_stats[m].failures);
        EXPECT_EQ(r.per_model[m].hangs, reference_stats[m].hangs);
        EXPECT_EQ(r.per_model[m].latent, reference_stats[m].latent);
        EXPECT_EQ(r.per_model[m].silent, reference_stats[m].silent);
      }
    }
  }
}

// The default (auto-stride) ladder must actually be used — and the
// transient convergence cut-off must actually fire — on a campaign sized
// like the real ones, or the perf story silently regresses to PR 1.
TEST(Ladder, ReplayCountersShowLadderAtWork) {
  const auto prog = workloads::build("a2time_x", {.iterations = 1,
                                                  .data_seed = 1});
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 12;
  cfg.instants_per_site = 4;
  cfg.models = {rtl::FaultModel::kTransientBitFlip};
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  EngineOptions opts;
  opts.threads = 2;
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_GT(r.replay.ladder_rungs, 0u);
  EXPECT_GT(r.replay.ladder_bytes, 0u);
  EXPECT_GT(r.replay.ladder_restores, 0u);
  EXPECT_GT(r.replay.convergence_cutoffs, 0u);
  // The naive path reports a dead ladder.
  EngineOptions naive;
  naive.threads = 2;
  naive.ladder_stride = 0;
  const CampaignResult n = run_rtl_campaign(prog, cfg, {}, naive);
  EXPECT_EQ(n.replay.ladder_rungs, 0u);
  EXPECT_EQ(n.replay.ladder_restores, 0u);
  EXPECT_EQ(n.replay.convergence_cutoffs, 0u);
  EXPECT_EQ(outcome_hash(n), outcome_hash(r));
}

// ISS backend: same invariance on the instruction-indexed ladder,
// including the bit-flip convergence cut-off.
TEST(Ladder, IssCampaignLadderInvariant) {
  const auto prog = workloads::build("a2time_x", {.iterations = 1,
                                                  .data_seed = 1});
  fault::IssCampaignConfig cfg;
  cfg.samples = 60;
  cfg.models = {iss::IssFaultModel::kBitFlip, iss::IssFaultModel::kStuckAt1};

  fault::IssCampaignResult reference;
  bool have_reference = false;
  for (const unsigned threads : {1u, 3u}) {
    for (const u64 stride : {u64{0}, u64{1}, u64{37}}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.ladder_stride = stride;
      const auto r = run_iss_campaign_engine(prog, cfg, opts);
      if (!have_reference) {
        reference = r;
        have_reference = true;
        continue;
      }
      ASSERT_EQ(r.runs.size(), reference.runs.size());
      for (std::size_t i = 0; i < r.runs.size(); ++i) {
        EXPECT_EQ(r.runs[i].failure, reference.runs[i].failure) << i;
        EXPECT_EQ(r.runs[i].latent, reference.runs[i].latent) << i;
        EXPECT_EQ(r.runs[i].latency_instr, reference.runs[i].latency_instr)
            << i;
      }
    }
  }
}

}  // namespace
}  // namespace issrtl::engine

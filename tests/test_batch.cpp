// Batched lockstep fault evaluation: the batch scheduler (replica lanes
// over the SoA kernel, engine::EngineOptions::batch_lanes) must be a pure
// performance feature — outcome counts, per-run outcomes/latencies and the
// canonical fault::outcome_hash stay bit-identical to the serial per-site
// path at every batch size and thread count, including batches that retire
// lanes through different exits (write divergence, hang, convergence /
// silent) and tail batches smaller than the lane count.
#include <algorithm>
#include <gtest/gtest.h>

#include "engine/rtl_backend.hpp"
#include "fault/campaign.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

using fault::CampaignConfig;
using fault::CampaignResult;
using fault::outcome_hash;

isa::Program small_workload() {
  return workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
}

/// Mixed-retirement campaign: exhaustive fetch-unit injection (the hang
/// factory) with stuck-at-0 and transient models at 3 instants per site —
/// the serial reference classifies silent, failing *and* hanging runs, so
/// batches mix all retirement paths (and the transient convergence cut-off
/// fires alongside them).
CampaignConfig mixed_config() {
  CampaignConfig cfg;
  cfg.unit_prefix = "iu.fe";
  cfg.samples = 0;  // exhaustive: every (node, bit) of the fetch unit
  cfg.instants_per_site = 3;
  cfg.models = {rtl::FaultModel::kTransientBitFlip,
                rtl::FaultModel::kStuckAt0};
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  return cfg;
}

void expect_same_outcomes(const CampaignResult& a, const CampaignResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.runs.size(), b.runs.size()) << label;
  EXPECT_EQ(outcome_hash(a), outcome_hash(b)) << label;
  ASSERT_EQ(a.per_model.size(), b.per_model.size()) << label;
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    EXPECT_EQ(a.per_model[m].failures, b.per_model[m].failures) << label;
    EXPECT_EQ(a.per_model[m].hangs, b.per_model[m].hangs) << label;
    EXPECT_EQ(a.per_model[m].latent, b.per_model[m].latent) << label;
    EXPECT_EQ(a.per_model[m].silent, b.per_model[m].silent) << label;
  }
}

TEST(Batch, BitIdenticalToSerialAcrossBatchSizesAndThreads) {
  const auto prog = small_workload();
  const CampaignConfig cfg = mixed_config();

  EngineOptions serial;
  serial.threads = 1;  // batch_lanes 1: the per-site reference path
  const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

  // The reference must actually exercise every retirement path, or the
  // "mixed batch" claim below is vacuous.
  std::size_t failures = 0, hangs = 0, silent = 0;
  for (const auto& run : reference.runs) {
    failures += run.outcome == fault::Outcome::kFailure;
    hangs += run.outcome == fault::Outcome::kHang;
    silent += run.outcome == fault::Outcome::kSilent;
  }
  ASSERT_GT(failures, 0u);
  ASSERT_GT(hangs, 0u);
  ASSERT_GT(silent, 0u);
  ASSERT_GT(reference.replay.convergence_cutoffs, 0u)
      << "transient cut-off should fire in the reference too";

  // Batch 1 re-runs the serial path; 4 and 7 give many batches per shard
  // (7, a non-power-of-two, also misaligns with both the shard sizes and
  // the kLaneTile interleave tiles, forcing tail batches and part-empty
  // tiles); 32 exceeds a 3-thread shard's site count in places, so whole
  // batches run below capacity. Every cell is pinned with the SIMD
  // lane-slice rounds on (interleaved tiles + commit_lanes) and off (flat
  // per-lane chunked stepping).
  for (const unsigned threads : {1u, 3u}) {
    for (const unsigned batch : {1u, 4u, 7u, 32u}) {
      for (const bool simd : {false, true}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.batch_lanes = batch;
        opts.simd_lanes = simd;
        const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
        expect_same_outcomes(reference, r,
                             "threads=" + std::to_string(threads) +
                                 " batch=" + std::to_string(batch) +
                                 " simd=" + std::to_string(simd));
      }
    }
  }
}

// Per-run fields (not just the aggregate hash): outcome, latency and site
// must match slot-for-slot, since batching must not even reorder records.
TEST(Batch, RecordsMatchSlotForSlot) {
  const auto prog = small_workload();
  CampaignConfig cfg = mixed_config();
  cfg.samples = 20;  // sampled flavour for variety

  EngineOptions serial;
  serial.threads = 1;
  EngineOptions batched;
  batched.threads = 2;
  batched.batch_lanes = 5;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, serial);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, batched);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].site.node, b.runs[i].site.node) << i;
    EXPECT_EQ(a.runs[i].site.inject_cycle, b.runs[i].site.inject_cycle) << i;
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    EXPECT_EQ(a.runs[i].latency_cycles, b.runs[i].latency_cycles) << i;
    EXPECT_EQ(a.runs[i].node_name, b.runs[i].node_name) << i;
  }
}

// Batching composes with every engine fast path being disabled: no ladder,
// no early stop, no hang fast-forward — lanes then run their full suffix
// budget, and outcomes must still pin to the equally-configured serial run.
TEST(Batch, ComposesWithDisabledFastPaths) {
  const auto prog = small_workload();
  CampaignConfig cfg = mixed_config();
  cfg.samples = 12;

  EngineOptions slow_serial;
  slow_serial.threads = 1;
  slow_serial.ladder_stride = 0;
  slow_serial.early_stop = false;
  slow_serial.hang_fast_forward = false;

  EngineOptions slow_batched = slow_serial;
  slow_batched.batch_lanes = 4;

  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, slow_serial);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, slow_batched);
  expect_same_outcomes(a, b, "fast paths disabled");
}

// A batch larger than the whole campaign: one under-filled batch per shard.
TEST(Batch, BatchLargerThanCampaign) {
  const auto prog = small_workload();
  CampaignConfig cfg = mixed_config();
  cfg.samples = 3;

  EngineOptions serial;
  serial.threads = 1;
  EngineOptions batched;
  batched.threads = 1;
  batched.batch_lanes = 64;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, serial);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, batched);
  expect_same_outcomes(a, b, "batch > campaign");
}

// Push the scheduler into its survivor-compaction path: a pool as large as
// the whole shard drains the spawn queue immediately, and a min-live floor
// of 1 keeps the lockstep rounds running while retirements thin the tiles —
// so compaction (and the lane permutation behind it) must actually fire.
// Outcomes stay pinned to the serial reference, and the occupancy counters
// prove the events happened (rather than the test passing vacuously because
// the scheduler silently fell back to the scalar tail).
TEST(Batch, ForcedCompactionStaysBitIdentical) {
  const auto prog = small_workload();
  const CampaignConfig cfg = mixed_config();

  EngineOptions serial;
  serial.threads = 1;
  const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

  EngineOptions opts;
  opts.threads = 1;
  opts.batch_lanes = 64;
  opts.simd_lanes = true;
  opts.simd_min_live = 1;  // lockstep down to the last live lane
  opts.simd_tile = 4;      // small tiles: many compaction opportunities
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  expect_same_outcomes(reference, r, "forced compaction");
  EXPECT_GT(r.replay.simd_rounds, 0u);
  EXPECT_GT(r.replay.lane_refills, 0u)
      << "shard should outnumber the pool, forcing continuous refill";
  EXPECT_GT(r.replay.lane_compactions, 0u)
      << "drained queue + thinning survivors should trigger compaction";
  EXPECT_GT(r.replay.live_lane_rounds, r.replay.simd_rounds)
      << "mean occupancy above one live lane per round";
}

// lane_refill is a pure scheduling knob: turning it off slices every shard
// into fixed batch-sized pieces (the pre-pool scheduler, and the bench's
// A/B baseline) whose failure tails thin the pool instead of respawning —
// outcomes, records and fault::outcome_hash must not move, with the SIMD
// rounds on and off, serial and threaded.
TEST(Batch, FixedBatchSchedulingIsOutcomeNeutral) {
  const auto prog = small_workload();
  const CampaignConfig cfg = mixed_config();

  EngineOptions serial;
  serial.threads = 1;
  const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

  for (const unsigned threads : {1u, 2u}) {
    for (const bool simd : {false, true}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.batch_lanes = 8;
      opts.simd_lanes = simd;
      opts.lane_refill = false;
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      expect_same_outcomes(reference, r,
                           "fixed batches, threads=" +
                               std::to_string(threads) +
                               " simd=" + std::to_string(simd));
    }
  }
}

// simd_tile and simd_min_live are pure scheduling knobs: every tile width
// and min-live floor must leave outcomes bit-identical to the serial path
// (the tile only changes the interleave grain of the masked commit, the
// floor only where the scalar tail takes over).
TEST(Batch, TileAndMinLiveKnobsAreOutcomeNeutral) {
  const auto prog = small_workload();
  CampaignConfig cfg = mixed_config();
  cfg.samples = 24;  // sampled flavour keeps the 3x3 matrix cheap

  EngineOptions serial;
  serial.threads = 1;
  const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

  for (const unsigned tile : {2u, 8u, 16u}) {
    for (const unsigned min_live : {1u, 6u, 32u}) {
      EngineOptions opts;
      opts.threads = 2;
      opts.batch_lanes = 9;
      opts.simd_lanes = true;
      opts.simd_tile = tile;
      opts.simd_min_live = min_live;
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      expect_same_outcomes(reference, r,
                           "tile=" + std::to_string(tile) +
                               " min_live=" + std::to_string(min_live));
    }
  }
}

// The full-window instant draw (InstantWindow::kFull) must reach the second
// half of the golden run — the states the legacy half-window draw could
// never sample — while the default keeps the historical draw bit-identical.
TEST(Batch, InstantWindowFullReachesSecondHalf) {
  const auto prog = small_workload();
  CampaignConfig cfg = mixed_config();
  cfg.samples = 40;

  EngineOptions opts;
  opts.threads = 1;

  CampaignConfig full = cfg;
  full.instant_window = fault::InstantWindow::kFull;
  const CampaignResult rh = run_rtl_campaign(prog, cfg, {}, opts);
  const CampaignResult rf = run_rtl_campaign(prog, full, {}, opts);

  u64 half_max = 0, full_max = 0;
  for (const auto& run : rh.runs) {
    half_max = std::max(half_max, run.site.inject_cycle);
  }
  for (const auto& run : rf.runs) {
    full_max = std::max(full_max, run.site.inject_cycle);
  }
  // Legacy window: never past golden/2. Full window: each of the ~240
  // draws lands in the second half with probability 1/2.
  EXPECT_LE(half_max, rh.golden_cycles / 2);
  EXPECT_GT(full_max, rf.golden_cycles / 2);
  // Full-window campaigns stay bit-identical across the batch/SIMD matrix
  // too — late instants must not break the lockstep scheduler.
  for (const bool simd : {false, true}) {
    EngineOptions b = opts;
    b.batch_lanes = 7;
    b.simd_lanes = simd;
    expect_same_outcomes(rf, run_rtl_campaign(prog, full, {}, b),
                         "full window, simd=" + std::to_string(simd));
  }
}

}  // namespace
}  // namespace issrtl::engine

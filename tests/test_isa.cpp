// Unit and property tests for the SPARC V8 ISA substrate:
// encode/decode round trips, assembler fixups and the opcode metadata table.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/encode.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"

namespace issrtl::isa {
namespace {

TEST(OpcodeTable, EveryOpcodeHasInfo) {
  for (std::size_t i = 1; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto& info = opcode_info(op);
    EXPECT_EQ(info.opcode, op) << "table hole at index " << i;
    EXPECT_FALSE(info.mnemonic.empty());
    EXPECT_NE(info.iclass, InstClass::kInvalid) << info.mnemonic;
    EXPECT_NE(info.units, 0u) << info.mnemonic;
    EXPECT_GE(info.latency, 1) << info.mnemonic;
  }
}

TEST(OpcodeTable, EveryOpcodeTouchesFetchAndDecode) {
  for (std::size_t i = 1; i < kNumOpcodes; ++i) {
    const auto& info = opcode_info(static_cast<Opcode>(i));
    // Paper §3: "all instructions have the same probability of triggering a
    // failure at decode and fetch stages as these stages are used by every
    // instruction".
    EXPECT_TRUE(info.units & unit_bit(FuncUnit::Fetch)) << info.mnemonic;
    EXPECT_TRUE(info.units & unit_bit(FuncUnit::Decode)) << info.mnemonic;
  }
}

TEST(OpcodeTable, MemoryOpsTouchDCache) {
  for (std::size_t i = 1; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto& info = opcode_info(op);
    EXPECT_EQ(is_memory_op(op),
              (info.units & unit_bit(FuncUnit::DCache)) != 0)
        << info.mnemonic;
  }
}

TEST(OpcodeTable, BranchCondRoundTrip) {
  for (u8 cond = 0; cond < 16; ++cond) {
    const Opcode op = branch_from_cond(cond);
    EXPECT_TRUE(is_branch(op));
    EXPECT_EQ(branch_cond(op), cond);
  }
}

TEST(OpcodeTable, Op3TablesRoundTrip) {
  for (std::size_t i = 1; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    if (const u8 op3 = op3_arith(op); op3 != 0xFF) {
      EXPECT_EQ(opcode_from_op3_arith(op3), op) << mnemonic(op);
    }
    if (const u8 op3 = op3_mem(op); op3 != 0xFF) {
      EXPECT_EQ(opcode_from_op3_mem(op3), op) << mnemonic(op);
    }
  }
}

// ---- encode/decode round trips ---------------------------------------------

TEST(EncodeDecode, Sethi) {
  const u32 w = encode_sethi(5, 0x12345);
  const DecodedInst d = decode(w);
  EXPECT_EQ(d.opcode, Opcode::kSETHI);
  EXPECT_EQ(d.rd, 5);
  EXPECT_EQ(d.imm22, 0x12345u);
}

TEST(EncodeDecode, Nop) {
  const DecodedInst d = decode(encode_nop());
  EXPECT_EQ(d.opcode, Opcode::kSETHI);
  EXPECT_EQ(d.rd, 0);
  EXPECT_EQ(d.imm22, 0u);
}

TEST(EncodeDecode, CallDisplacement) {
  for (const i32 disp : {4, -4, 0x100, -0x4000, 0x3FFF'FFFC}) {
    const DecodedInst d = decode(encode_call(disp));
    EXPECT_EQ(d.opcode, Opcode::kCALL);
    EXPECT_EQ(d.disp, disp);
    EXPECT_EQ(d.rd, 15);
  }
}

TEST(EncodeDecode, BranchAllCondsAndAnnul) {
  for (u8 cond = 0; cond < 16; ++cond) {
    const Opcode op = branch_from_cond(cond);
    for (const bool annul : {false, true}) {
      for (const i32 disp : {8, -8, 0x1FFFFC, -0x200000}) {
        const DecodedInst d = decode(encode_branch(op, annul, disp));
        EXPECT_EQ(d.opcode, op);
        EXPECT_EQ(d.annul, annul);
        EXPECT_EQ(d.disp, disp);
      }
    }
  }
}

TEST(EncodeDecode, BranchRangeChecked) {
  EXPECT_THROW(encode_branch(Opcode::kBA, false, 3), EncodeError);
  EXPECT_THROW(encode_branch(Opcode::kBA, false, 1 << 24), EncodeError);
  EXPECT_THROW(encode_branch(Opcode::kADD, false, 4), EncodeError);
}

TEST(EncodeDecode, Format3RegAndImm) {
  const u32 wr = encode_f3_reg(Opcode::kADD, 1, 2, 3);
  DecodedInst d = decode(wr);
  EXPECT_EQ(d.opcode, Opcode::kADD);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.rs2, 3);
  EXPECT_FALSE(d.uses_imm);

  const u32 wi = encode_f3_imm(Opcode::kSUBCC, 4, 5, -42);
  d = decode(wi);
  EXPECT_EQ(d.opcode, Opcode::kSUBCC);
  EXPECT_TRUE(d.uses_imm);
  EXPECT_EQ(d.simm13, -42);
}

TEST(EncodeDecode, Simm13Boundaries) {
  for (const i32 imm : {-4096, -1, 0, 1, 4095}) {
    const DecodedInst d = decode(encode_f3_imm(Opcode::kOR, 1, 1, imm));
    EXPECT_EQ(d.simm13, imm);
  }
  EXPECT_THROW(encode_f3_imm(Opcode::kOR, 1, 1, 4096), EncodeError);
  EXPECT_THROW(encode_f3_imm(Opcode::kOR, 1, 1, -4097), EncodeError);
}

TEST(EncodeDecode, TrapAlways) {
  const DecodedInst d = decode(encode_ta(0));
  EXPECT_EQ(d.opcode, Opcode::kTA);
  EXPECT_EQ(d.trap_num, 0);
  const DecodedInst d5 = decode(encode_ta(5));
  EXPECT_EQ(d5.trap_num, 5);
}

TEST(EncodeDecode, LddOddRdRejected) {
  const u32 w = encode_f3_imm(Opcode::kLDD, 3, 1, 0);  // odd rd
  EXPECT_EQ(decode(w).opcode, Opcode::kInvalid);
}

TEST(Decode, GarbageIsInvalidNotCrash) {
  Xoshiro256 rng(99);
  int invalid = 0;
  for (int i = 0; i < 100000; ++i) {
    const DecodedInst d = decode(rng.next_u32());
    if (!d.valid()) ++invalid;
  }
  EXPECT_GT(invalid, 0);
}

// Property: every format-3 opcode round-trips through encode/decode with
// randomized fields.
class F3RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(F3RoundTrip, RandomFields) {
  const auto op = static_cast<Opcode>(GetParam());
  if (op3_arith(op) == 0xFF && op3_mem(op) == 0xFF) GTEST_SKIP();
  if (op == Opcode::kTA) GTEST_SKIP();  // Ticc has its own encoder
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    u8 rd = static_cast<u8>(rng.next_below(32));
    const u8 rs1 = static_cast<u8>(rng.next_below(32));
    const u8 rs2 = static_cast<u8>(rng.next_below(32));
    if (op == Opcode::kLDD || op == Opcode::kSTD) rd &= 0x1E;
    if (op == Opcode::kRDY) {
      const DecodedInst d = decode(encode_f3_reg(op, rd, 0, 0));
      EXPECT_EQ(d.opcode, op);
      continue;
    }
    const DecodedInst dr = decode(encode_f3_reg(op, rd, rs1, rs2));
    EXPECT_EQ(dr.opcode, op) << mnemonic(op);
    // WRY and FLUSH ignore rd; the decoder canonicalises it to zero.
    if (op != Opcode::kWRY && op != Opcode::kFLUSH) {
      EXPECT_EQ(dr.rd, rd);
    }
    EXPECT_EQ(dr.rs1, rs1);
    EXPECT_EQ(dr.rs2, rs2);

    const i32 imm = static_cast<i32>(rng.next_below(8192)) - 4096;
    const DecodedInst di = decode(encode_f3_imm(op, rd, rs1, imm));
    EXPECT_EQ(di.opcode, op) << mnemonic(op);
    EXPECT_TRUE(di.uses_imm);
    EXPECT_EQ(di.simm13, imm);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, F3RoundTrip,
                         ::testing::Range(1, static_cast<int>(kNumOpcodes)));

// ---- registers ---------------------------------------------------------------

TEST(Registers, WindowOverlap) {
  // Window w's ins are window (w-1)'s outs: after SAVE (cwp decrements),
  // the caller's %o registers appear as the callee's %i registers.
  for (unsigned cwp = 0; cwp < kNumWindows; ++cwp) {
    const unsigned callee = (cwp + kNumWindows - 1) % kNumWindows;
    for (unsigned k = 0; k < 8; ++k) {
      EXPECT_EQ(phys_reg_index(8 + k, cwp),      // caller %o_k
                phys_reg_index(24 + k, callee)); // callee %i_k
    }
  }
}

TEST(Registers, GlobalsSharedAcrossWindows) {
  for (unsigned cwp = 0; cwp < kNumWindows; ++cwp) {
    for (unsigned g = 0; g < 8; ++g) EXPECT_EQ(phys_reg_index(g, cwp), g);
  }
}

TEST(Registers, LocalsPrivatePerWindow) {
  // No two different windows may map a local register to the same slot.
  for (unsigned w1 = 0; w1 < kNumWindows; ++w1) {
    for (unsigned w2 = w1 + 1; w2 < kNumWindows; ++w2) {
      for (unsigned k = 16; k < 24; ++k) {
        EXPECT_NE(phys_reg_index(k, w1), phys_reg_index(k, w2));
      }
    }
  }
}

TEST(Registers, Names) {
  EXPECT_EQ(reg_name(0), "%g0");
  EXPECT_EQ(reg_name(14), "%o6");
  EXPECT_EQ(reg_name(17), "%l1");
  EXPECT_EQ(reg_name(31), "%i7");
}

// ---- assembler ---------------------------------------------------------------

TEST(Assembler, ForwardAndBackwardBranches) {
  Assembler a("t");
  auto back = a.here();
  a.nop();
  auto fwd = a.label();
  a.ba(fwd);
  a.nop();
  a.ba(back);
  a.nop();
  a.bind(fwd);
  a.halt();
  const Program p = a.finalize();

  // Instruction 1 is "ba fwd": target is the halt at index 5.
  const DecodedInst b1 = decode(p.code[1]);
  EXPECT_EQ(p.code_base + 4 + static_cast<u32>(b1.disp), p.code_base + 20);
  // Instruction 3 is "ba back": target is index 0.
  const DecodedInst b3 = decode(p.code[3]);
  EXPECT_EQ(p.code_base + 12 + static_cast<u32>(b3.disp), p.code_base);
}

TEST(Assembler, CallFixup) {
  Assembler a("t");
  auto fn = a.label();
  a.call(fn);
  a.nop();
  a.halt();
  a.bind(fn);
  a.retl();
  a.nop();
  const Program p = a.finalize();
  const DecodedInst c = decode(p.code[0]);
  EXPECT_EQ(c.opcode, Opcode::kCALL);
  EXPECT_EQ(p.code_base + static_cast<u32>(c.disp), p.code_base + 12);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a("t");
  auto l = a.label();
  a.ba(l);
  a.nop();
  EXPECT_THROW(a.finalize(), AssemblerError);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a("t");
  auto l = a.here();
  EXPECT_THROW(a.bind(l), AssemblerError);
}

TEST(Assembler, Set32Variants) {
  Assembler a("t");
  a.set32(Reg::o0, 0);            // 1 insn (mov)
  a.set32(Reg::o1, 4095);         // 1 insn
  a.set32(Reg::o2, 0x12345678);   // sethi + or
  a.set32(Reg::o3, 0xFFFFFC00);   // sethi only (low 10 bits zero)
  const Program p = a.finalize();
  EXPECT_EQ(p.code.size(), 5u);   // 1 + 1 + 2 + 1
}

TEST(Assembler, DataSection) {
  Assembler a("t");
  const u32 w = a.data_u32(0xCAFEBABE);
  const u32 b = a.data_u8(0x7);
  const u32 h = a.data_u16(0x1234);  // must auto-align
  EXPECT_EQ(w, a.finalize().data_base);
  EXPECT_EQ(b, w + 4);
  EXPECT_EQ(h % 2, 0u);
}

TEST(Assembler, DataLoadsBigEndian) {
  Assembler a("t");
  const u32 addr = a.data_u32(0xCAFEBABE);
  Program p = a.finalize();
  Memory m;
  p.load_into(m);
  EXPECT_EQ(m.load_u32(addr), 0xCAFEBABEu);
  EXPECT_EQ(m.load_u8(addr), 0xCAu);
}

TEST(Assembler, SymbolTable) {
  Assembler a("t");
  a.def_symbol("result", 0x40100000);
  const Program p = a.finalize();
  EXPECT_EQ(p.symbol("result"), 0x40100000u);
  EXPECT_THROW(p.symbol("nope"), std::out_of_range);
}

// ---- disassembler --------------------------------------------------------------

TEST(Disasm, Representative) {
  EXPECT_EQ(disassemble(encode_f3_imm(Opcode::kADD, 10, 9, 4), 0),
            "add %o1, 4, %o2");
  EXPECT_EQ(disassemble(encode_nop(), 0), "nop");
  EXPECT_EQ(disassemble(encode_ta(0), 0), "ta 0");
  const std::string b =
      disassemble(encode_branch(Opcode::kBNE, true, 16), 0x40000000);
  EXPECT_EQ(b, "bne,a 0x40000010");
}

TEST(Disasm, NeverEmpty) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_FALSE(disassemble(rng.next_u32(), 0x40000000).empty());
  }
}

}  // namespace
}  // namespace issrtl::isa

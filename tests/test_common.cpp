// Unit tests for the common substrate: bit utilities, sparse memory,
// deterministic RNG and off-core trace comparison.
#include <gtest/gtest.h>

#include "common/bus.hpp"
#include "common/memory.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace issrtl {
namespace {

TEST(Bits, ExtractRanges) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
  EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
  EXPECT_EQ(bit(0x8000'0000u, 31), 1u);
  EXPECT_EQ(bit(0x8000'0000u, 30), 0u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x1FFF, 13), -1);
  EXPECT_EQ(sign_extend(0x0FFF, 13), 4095);
  EXPECT_EQ(sign_extend(0x1000, 13), -4096);
  EXPECT_EQ(sign_extend(0x3F'FFFF, 22), -1);
  EXPECT_EQ(sign_extend(0, 22), 0);
}

TEST(Bits, WithBit) {
  EXPECT_EQ(with_bit(0, 5, true), 32u);
  EXPECT_EQ(with_bit(0xFF, 0, false), 0xFEu);
  EXPECT_EQ(with_bit(0xFF, 3, true), 0xFFu);
}

TEST(Memory, ZeroOnFirstRead) {
  Memory m;
  EXPECT_EQ(m.load_u32(0x40000000), 0u);
  EXPECT_EQ(m.allocated_pages(), 0u);
}

TEST(Memory, BigEndianLayout) {
  Memory m;
  m.store_u32(0x1000, 0x11223344);
  EXPECT_EQ(m.load_u8(0x1000), 0x11);
  EXPECT_EQ(m.load_u8(0x1001), 0x22);
  EXPECT_EQ(m.load_u8(0x1002), 0x33);
  EXPECT_EQ(m.load_u8(0x1003), 0x44);
  EXPECT_EQ(m.load_u16(0x1000), 0x1122);
  EXPECT_EQ(m.load_u16(0x1002), 0x3344);
}

TEST(Memory, U64RoundTrip) {
  Memory m;
  m.store_u64(0x2000, 0x0102030405060708ull);
  EXPECT_EQ(m.load_u64(0x2000), 0x0102030405060708ull);
  EXPECT_EQ(m.load_u32(0x2000), 0x01020304u);
  EXPECT_EQ(m.load_u32(0x2004), 0x05060708u);
}

TEST(Memory, CrossPageAccess) {
  Memory m;
  const u32 addr = Memory::kPageSize - 2;
  m.store_u32(addr, 0xAABBCCDD);
  EXPECT_EQ(m.load_u32(addr), 0xAABBCCDDu);
  EXPECT_EQ(m.allocated_pages(), 2u);
}

TEST(Memory, BlockReadWrite) {
  Memory m;
  const u8 data[5] = {1, 2, 3, 4, 5};
  m.write_block(0x3000, data, sizeof data);
  u8 out[5] = {};
  m.read_block(0x3000, out, sizeof out);
  EXPECT_EQ(0, std::memcmp(data, out, sizeof data));
}

TEST(Memory, CloneIsDeep) {
  Memory m;
  m.store_u32(0x1000, 42);
  Memory c = m.clone();
  c.store_u32(0x1000, 43);
  EXPECT_EQ(m.load_u32(0x1000), 42u);
  EXPECT_EQ(c.load_u32(0x1000), 43u);
}

TEST(Memory, CowCloneSharesUntilWrite) {
  Memory m;
  m.store_u32(0x1000, 42);
  m.store_u32(0x5000, 7);  // second page
  Memory c = m.clone();
  EXPECT_TRUE(m.equals(c));

  // Write to one image: only that page un-shares, the other is unaffected.
  c.store_u32(0x1000, 99);
  EXPECT_EQ(m.load_u32(0x1000), 42u);
  EXPECT_EQ(c.load_u32(0x1000), 99u);
  EXPECT_EQ(m.load_u32(0x5000), 7u);
  EXPECT_EQ(c.load_u32(0x5000), 7u);
  EXPECT_FALSE(m.equals(c));

  // Writing back through the original does not leak into the clone either.
  m.store_u32(0x5000, 8);
  EXPECT_EQ(c.load_u32(0x5000), 7u);
}

TEST(Memory, CowCloneOfCloneIsIndependent) {
  Memory a;
  a.store_u8(0x2000, 1);
  Memory b = a.clone();
  Memory c = b.clone();
  b.store_u8(0x2000, 2);
  c.store_u8(0x2000, 3);
  EXPECT_EQ(a.load_u8(0x2000), 1);
  EXPECT_EQ(b.load_u8(0x2000), 2);
  EXPECT_EQ(c.load_u8(0x2000), 3);
}

TEST(Memory, CowEqualsUnaffectedBySharing) {
  Memory m;
  for (u32 p = 0; p < 8; ++p) m.store_u32(0x1000 * (p + 1), p + 1);
  const Memory golden = m.clone();
  Memory faulty = m.clone();
  EXPECT_TRUE(faulty.equals(golden));
  faulty.store_u32(0x3000, 0xBAD);
  EXPECT_FALSE(faulty.equals(golden));
  EXPECT_FALSE(golden.equals(faulty));
  faulty.store_u32(0x3000, 3);  // restore the overwritten value
  EXPECT_TRUE(faulty.equals(golden));
  EXPECT_TRUE(m.equals(golden));  // the source image never changed
}

TEST(Memory, CrossPageWordAccess) {
  Memory m;
  const u32 addr = Memory::kPageSize - 2;
  m.store_u32(addr, 0x11223344);
  EXPECT_EQ(m.load_u32(addr), 0x11223344u);
  EXPECT_EQ(m.load_u16(addr), 0x1122u);
  EXPECT_EQ(m.load_u16(addr + 2), 0x3344u);
  const u8 block[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  m.write_block(addr - 2, block, sizeof block);
  u8 out[8] = {};
  m.read_block(addr - 2, out, sizeof out);
  EXPECT_EQ(0, std::memcmp(block, out, sizeof block));
}

TEST(Memory, EqualsIgnoresZeroPages) {
  Memory a, b;
  a.store_u32(0x1000, 0);  // allocates a zero page
  EXPECT_TRUE(a.equals(b));
  EXPECT_TRUE(b.equals(a));
  a.store_u32(0x1000, 7);
  EXPECT_FALSE(a.equals(b));
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(OffCoreTrace, IdenticalTracesDontDiverge) {
  OffCoreTrace a, b;
  a.record_write(1, 0x100, 4, 0xAA);
  b.record_write(9, 0x100, 4, 0xAA);  // cycle differences are not failures
  EXPECT_FALSE(a.compare_writes(b).diverged);
}

TEST(OffCoreTrace, ValueMismatchDiverges) {
  OffCoreTrace a, b;
  a.record_write(1, 0x100, 4, 0xAA);
  b.record_write(1, 0x100, 4, 0xAB);
  const auto d = a.compare_writes(b);
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 0u);
}

TEST(OffCoreTrace, MissingWriteDiverges) {
  OffCoreTrace golden, faulty;
  golden.record_write(1, 0x100, 4, 1);
  golden.record_write(2, 0x104, 4, 2);
  faulty.record_write(1, 0x100, 4, 1);
  EXPECT_TRUE(faulty.compare_writes(golden).diverged);
}

TEST(OffCoreTrace, ExtraWriteDiverges) {
  OffCoreTrace golden, faulty;
  golden.record_write(1, 0x100, 4, 1);
  faulty.record_write(1, 0x100, 4, 1);
  faulty.record_write(2, 0x104, 4, 2);
  EXPECT_TRUE(faulty.compare_writes(golden).diverged);
}

TEST(OffCoreTrace, SizeMismatchDiverges) {
  OffCoreTrace a, b;
  a.record_write(1, 0x100, 2, 0xAA);
  b.record_write(1, 0x100, 4, 0xAA);
  EXPECT_TRUE(a.compare_writes(b).diverged);
}

TEST(OffCoreTrace, ReadsAreNotCompared) {
  OffCoreTrace a, b;
  a.record_read(1, 0x100, 4, 0xAA);
  b.record_read(1, 0x200, 4, 0xBB);
  EXPECT_FALSE(a.compare_writes(b).diverged);
}

}  // namespace
}  // namespace issrtl

// Cross-module integration tests: cache-geometry sweeps (architectural
// behaviour must be invariant to CMEM configuration), text-assembler →
// cosimulation pipelines, VCD dumping from live cores, and end-to-end
// campaign → predictor flows.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/diversity.hpp"
#include "core/predict.hpp"
#include "fault/campaign.hpp"
#include "isa/asm_parser.hpp"
#include "iss/emulator.hpp"
#include "rtl/vcd.hpp"
#include "rtlcore/core.hpp"
#include "workloads/workload.hpp"

namespace issrtl {
namespace {

// Architectural results must not depend on cache geometry: sweep size, line
// and penalty and compare against the ISS reference.
struct Geometry {
  u32 size;
  u32 line;
  u32 penalty;
};

class CacheGeometryCosim : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometryCosim, ArchitectureInvariant) {
  const auto prog =
      workloads::build("canrdr", {.iterations = 1, .data_seed = 7});

  Memory iss_mem;
  iss::Emulator emu(iss_mem);
  emu.load(prog);
  ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);

  const Geometry g = GetParam();
  rtlcore::CoreConfig cfg;
  cfg.icache = {g.size, g.line, g.penalty};
  cfg.dcache = {g.size, g.line, g.penalty};
  Memory rtl_mem;
  rtlcore::Leon3Core core(rtl_mem, cfg);
  core.load(prog);
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);

  EXPECT_FALSE(core.offcore().compare_writes(emu.offcore()).diverged);
  EXPECT_EQ(core.arch_state().regs, emu.state().regs);
  EXPECT_EQ(core.instret(), emu.instret());
  // Smaller caches / bigger penalties may only slow things down.
  EXPECT_GE(core.cycles(), core.instret());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryCosim,
    ::testing::Values(Geometry{256, 16, 3}, Geometry{512, 8, 1},
                      Geometry{1024, 16, 5}, Geometry{2048, 32, 10},
                      Geometry{4096, 16, 20}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size) + "l" +
             std::to_string(info.param.line) + "p" +
             std::to_string(info.param.penalty);
    });

TEST(Integration, SmallerCachesCostMoreCycles) {
  const auto prog = workloads::build("tblook", {.iterations = 1});
  auto cycles_with = [&](u32 size) {
    rtlcore::CoreConfig cfg;
    cfg.icache = {size, 16, 5};
    cfg.dcache = {size, 16, 5};
    Memory mem;
    rtlcore::Leon3Core core(mem, cfg);
    core.load(prog);
    EXPECT_EQ(core.run(), iss::HaltReason::kHalted);
    return core.cycles();
  };
  EXPECT_GT(cycles_with(256), cycles_with(4096));
}

TEST(Integration, TextAssemblerProgramCosimulates) {
  const isa::Program prog = isa::assemble_text(R"(
    .data
    tbl:  .word 3, 1, 4, 1, 5, 9, 2, 6
    out:  .space 8
    .text
      set tbl, %l0
      set out, %l1
      mov 8, %o2
      clr %o0
    loop:
      ld [%l0], %o1
      add %o0, %o1, %o0
      add %l0, 4, %l0
      subcc %o2, 1, %o2
      bne loop
      nop
      st %o0, [%l1]
      ta 0
  )");
  Memory im;
  iss::Emulator emu(im);
  emu.load(prog);
  ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);
  EXPECT_EQ(im.load_u32(prog.symbol("out")), 31u);

  Memory rm;
  rtlcore::Leon3Core core(rm);
  core.load(prog);
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);
  EXPECT_FALSE(core.offcore().compare_writes(emu.offcore()).diverged);
}

TEST(Integration, VcdFromLiveCoreRun) {
  const auto prog = workloads::build("intbench", {.iterations = 1});
  Memory mem;
  rtlcore::Leon3Core core(mem);
  core.load(prog);
  const std::string path = ::testing::TempDir() + "core_run.vcd";
  {
    rtl::VcdWriter vcd(path, core.sim());
    for (int c = 0; c < 50; ++c) {
      core.step();
      vcd.sample(core.cycles());
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("fetch_pc"), std::string::npos);
  EXPECT_NE(all.find("#50"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Integration, CampaignFeedsPredictorEndToEnd) {
  // Small but complete pipeline: ISS diversity + RTL campaigns -> calibrate
  // -> sane prediction for a held-out workload.
  Memory probe_mem;
  rtlcore::Leon3Core probe(probe_mem);
  const core::AreaModel area = core::build_area_model(probe.sim());

  std::vector<core::CalibrationSample> samples;
  for (const char* name : {"a2time_x", "rspeed_x", "intbench", "membench"}) {
    const auto prog = workloads::build(name, {.iterations = 1});
    core::CalibrationSample s;
    s.diversity = core::analyze_diversity(prog);
    fault::CampaignConfig cfg;
    cfg.unit_prefix = "iu";
    cfg.samples = 40;
    const auto r = fault::run_campaign(prog, cfg);
    s.total_pf = r.stats_for(rtl::FaultModel::kStuckAt1).pf();
    samples.push_back(std::move(s));
  }
  core::PfPredictor p;
  p.calibrate(samples, area);
  // An automotive workload (diversity ~48) must be predicted above every
  // low-diversity calibration point.
  const double pred = p.predict_global(48);
  for (const auto& s : samples) EXPECT_GE(pred + 1e-9, s.total_pf);
  EXPECT_LE(pred, 1.0);
}

TEST(Integration, TransientCampaignLessSevereThanPermanent) {
  const auto prog = workloads::build("rspeed_x", {.iterations = 1});
  fault::CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 120;
  cfg.models = {rtl::FaultModel::kStuckAt1,
                rtl::FaultModel::kTransientBitFlip};
  const auto r = fault::run_campaign(prog, cfg);
  EXPECT_LE(r.stats_for(rtl::FaultModel::kTransientBitFlip).pf(),
            r.stats_for(rtl::FaultModel::kStuckAt1).pf());
}

TEST(Integration, ExhaustiveCampaignOnTinyUnit) {
  // Exhaustive mode over the special-register unit: every bit, both
  // polarities, deterministic totals.
  const auto prog = workloads::build("a2time_x", {.iterations = 1});
  fault::CampaignConfig cfg;
  cfg.unit_prefix = "iu.special";
  cfg.samples = 0;
  cfg.models = {rtl::FaultModel::kStuckAt0, rtl::FaultModel::kStuckAt1};
  const auto r = fault::run_campaign(prog, cfg);
  Memory mem;
  rtlcore::Leon3Core probe(mem);
  EXPECT_EQ(r.runs.size(),
            2 * probe.sim().injectable_bits("iu.special"));
  for (const auto& s : r.per_model) {
    EXPECT_EQ(s.failures + s.hangs + s.latent + s.silent, s.runs);
  }
}

}  // namespace
}  // namespace issrtl

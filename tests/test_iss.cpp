// Unit tests for the functional emulator: instruction semantics, delayed
// control transfer, register windows, traps, tracing and ISS-level faults.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "iss/emulator.hpp"
#include "iss/timing.hpp"

namespace issrtl::iss {
namespace {

using isa::Assembler;
using isa::Opcode;
using isa::Program;
using isa::Reg;

/// Assemble, run to completion, return the emulator for inspection.
struct RunResult {
  Memory mem;
  std::unique_ptr<Emulator> emu;
};

RunResult run_program(Assembler& a, u64 max_steps = 100000) {
  RunResult r;
  Program p = a.finalize();
  r.emu = std::make_unique<Emulator>(r.mem);
  r.emu->load(p);
  r.emu->run(max_steps);
  return r;
}

u32 reg(const RunResult& r, Reg rn) {
  return r.emu->state().get_reg(isa::reg_num(rn));
}

TEST(Emulator, HaltsOnTa0) {
  Assembler a("t");
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kHalted);
  EXPECT_EQ(r.emu->instret(), 1u);
}

TEST(Emulator, MovAndArithmetic) {
  Assembler a("t");
  a.mov(Reg::o0, 40);
  a.add(Reg::o0, Reg::o0, 2);
  a.sub(Reg::o1, Reg::o0, 10);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 42u);
  EXPECT_EQ(reg(r, Reg::o1), 32u);
}

TEST(Emulator, G0IsAlwaysZero) {
  Assembler a("t");
  a.mov(Reg::g0, 99);
  a.add(Reg::g0, Reg::g0, 99);
  a.mov(Reg::o0, Reg::g0);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 0u);
}

TEST(Emulator, AddccFlags) {
  struct Case { u32 x, y; bool n, z, v, c; };
  const Case cases[] = {
      {1, 1, false, false, false, false},
      {0, 0, false, true, false, false},
      {0xFFFFFFFF, 1, false, true, false, true},        // carry out, zero
      {0x7FFFFFFF, 1, true, false, true, false},        // signed overflow
      {0x80000000, 0x80000000, false, true, true, true} // both
  };
  for (const auto& c : cases) {
    Assembler a("t");
    a.set32(Reg::o0, c.x);
    a.set32(Reg::o1, c.y);
    a.addcc(Reg::o2, Reg::o0, Reg::o1);
    a.halt();
    auto r = run_program(a);
    const Icc icc = r.emu->state().icc;
    EXPECT_EQ(icc.n(), c.n) << c.x << "+" << c.y;
    EXPECT_EQ(icc.z(), c.z) << c.x << "+" << c.y;
    EXPECT_EQ(icc.v(), c.v) << c.x << "+" << c.y;
    EXPECT_EQ(icc.c(), c.c) << c.x << "+" << c.y;
  }
}

TEST(Emulator, SubccFlags) {
  struct Case { u32 x, y; bool n, z, v, c; };
  const Case cases[] = {
      {5, 3, false, false, false, false},
      {3, 3, false, true, false, false},
      {3, 5, true, false, false, true},                  // borrow
      {0x80000000, 1, false, false, true, false},        // signed overflow
  };
  for (const auto& c : cases) {
    Assembler a("t");
    a.set32(Reg::o0, c.x);
    a.set32(Reg::o1, c.y);
    a.subcc(Reg::o2, Reg::o0, Reg::o1);
    a.halt();
    auto r = run_program(a);
    const Icc icc = r.emu->state().icc;
    EXPECT_EQ(icc.n(), c.n) << c.x << "-" << c.y;
    EXPECT_EQ(icc.z(), c.z) << c.x << "-" << c.y;
    EXPECT_EQ(icc.v(), c.v) << c.x << "-" << c.y;
    EXPECT_EQ(icc.c(), c.c) << c.x << "-" << c.y;
  }
}

TEST(Emulator, AddxSubxUseCarry) {
  Assembler a("t");
  // 64-bit add: 0x00000001_FFFFFFFF + 1 = 0x00000002_00000000
  a.set32(Reg::o0, 0xFFFFFFFF);  // low
  a.set32(Reg::o1, 1);           // high
  a.addcc(Reg::o2, Reg::o0, 1);  // low sum, sets carry
  a.addx(Reg::o3, Reg::o1, 0);   // high sum + carry
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o2), 0u);
  EXPECT_EQ(reg(r, Reg::o3), 2u);
}

TEST(Emulator, LogicalOps) {
  Assembler a("t");
  a.set32(Reg::o0, 0xF0F0F0F0);
  a.set32(Reg::o1, 0x0FF00FF0);
  a.and_(Reg::o2, Reg::o0, Reg::o1);
  a.or_(Reg::o3, Reg::o0, Reg::o1);
  a.xor_(Reg::o4, Reg::o0, Reg::o1);
  a.andn(Reg::o5, Reg::o0, Reg::o1);
  a.orn(Reg::l0, Reg::o0, Reg::o1);
  a.xnor(Reg::l1, Reg::o0, Reg::o1);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o2), 0xF0F0F0F0u & 0x0FF00FF0u);
  EXPECT_EQ(reg(r, Reg::o3), 0xF0F0F0F0u | 0x0FF00FF0u);
  EXPECT_EQ(reg(r, Reg::o4), 0xF0F0F0F0u ^ 0x0FF00FF0u);
  EXPECT_EQ(reg(r, Reg::o5), 0xF0F0F0F0u & ~0x0FF00FF0u);
  EXPECT_EQ(reg(r, Reg::l0), 0xF0F0F0F0u | ~0x0FF00FF0u);
  EXPECT_EQ(reg(r, Reg::l1), ~(0xF0F0F0F0u ^ 0x0FF00FF0u));
}

TEST(Emulator, Shifts) {
  Assembler a("t");
  a.set32(Reg::o0, 0x80000001);
  a.sll(Reg::o1, Reg::o0, 4);
  a.srl(Reg::o2, Reg::o0, 4);
  a.sra(Reg::o3, Reg::o0, 4);
  a.set32(Reg::o5, 33);          // shift counts use low 5 bits only
  a.sll(Reg::o4, Reg::o0, Reg::o5);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o1), 0x00000010u);
  EXPECT_EQ(reg(r, Reg::o2), 0x08000000u);
  EXPECT_EQ(reg(r, Reg::o3), 0xF8000000u);
  EXPECT_EQ(reg(r, Reg::o4), 0x00000002u);  // shift by 33&31 = 1
}

TEST(Emulator, MultiplySignedUnsigned) {
  Assembler a("t");
  a.set32(Reg::o0, 0xFFFFFFFF);  // -1 signed
  a.set32(Reg::o1, 2);
  a.umul(Reg::o2, Reg::o0, Reg::o1);
  a.rdy(Reg::o3);                // Y = high word of unsigned product
  a.smul(Reg::o4, Reg::o0, Reg::o1);
  a.rdy(Reg::o5);                // Y = high word of signed product
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o2), 0xFFFFFFFEu);
  EXPECT_EQ(reg(r, Reg::o3), 1u);            // 0xFFFFFFFF*2 >> 32
  EXPECT_EQ(reg(r, Reg::o4), 0xFFFFFFFEu);   // -2 low word
  EXPECT_EQ(reg(r, Reg::o5), 0xFFFFFFFFu);   // -2 high word
}

TEST(Emulator, DivideUsesY) {
  Assembler a("t");
  a.wry(Reg::g0, 0);             // Y = 0
  a.set32(Reg::o0, 100);
  a.udiv(Reg::o1, Reg::o0, 7);
  a.set32(Reg::o2, 0xFFFFFF9C);  // -100
  a.wry(Reg::g0, -1);            // Y = all ones (sign extension of dividend)
  a.sdiv(Reg::o3, Reg::o2, 7);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o1), 14u);
  EXPECT_EQ(static_cast<i32>(reg(r, Reg::o3)), -14);
}

TEST(Emulator, UdivOverflowClamps) {
  Assembler a("t");
  a.wry(Reg::g0, 2);             // dividend = 2 * 2^32
  a.mov(Reg::o0, 0);
  a.udivcc(Reg::o1, Reg::o0, 1);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o1), 0xFFFFFFFFu);
  EXPECT_TRUE(r.emu->state().icc.v());
}

TEST(Emulator, DivisionByZeroTraps) {
  Assembler a("t");
  a.mov(Reg::o0, 5);
  a.udiv(Reg::o1, Reg::o0, Reg::g0);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kDivisionByZero);
}

TEST(Emulator, MulsccComputesProduct) {
  // Classic SPARC V8 32-step multiply loop using MULSCC: 13 * 11 = 143.
  Assembler a("t");
  a.mov(Reg::o0, 13);            // multiplier -> Y
  a.wry(Reg::o0, 0);
  a.mov(Reg::o1, 11);            // multiplicand
  a.clr(Reg::o2);                // partial product
  a.orcc(Reg::g0, Reg::g0, Reg::g0);  // clear N and V
  for (int i = 0; i < 32; ++i) a.mulscc(Reg::o2, Reg::o2, Reg::o1);
  a.mulscc(Reg::o2, Reg::o2, Reg::g0);  // final shift step
  a.rdy(Reg::o3);                // low word lands in Y
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o3), 143u);
}

// ---- control transfer -------------------------------------------------------

TEST(Emulator, DelaySlotExecutesBeforeTarget) {
  Assembler a("t");
  auto target = a.label();
  a.mov(Reg::o0, 1);
  a.ba(target);
  a.mov(Reg::o0, 2);   // delay slot: executes
  a.mov(Reg::o0, 3);   // skipped
  a.bind(target);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 2u);
}

TEST(Emulator, AnnulledDelaySlotOnUntakenBranch) {
  Assembler a("t");
  auto target = a.label();
  a.cmp(Reg::g0, 0);       // sets Z
  a.bne(target, /*annul=*/true);
  a.mov(Reg::o0, 99);      // annulled (branch not taken, a=1)
  a.mov(Reg::o1, 7);       // executed
  a.bind(target);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 0u);
  EXPECT_EQ(reg(r, Reg::o1), 7u);
}

TEST(Emulator, TakenAnnulledBranchExecutesDelaySlot) {
  Assembler a("t");
  auto target = a.label();
  a.cmp(Reg::g0, 0);
  a.be(target, /*annul=*/true);   // taken: delay slot executes despite a=1
  a.mov(Reg::o0, 42);
  a.mov(Reg::o0, 99);             // skipped
  a.bind(target);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 42u);
}

TEST(Emulator, BaAnnulSkipsDelaySlot) {
  Assembler a("t");
  auto target = a.label();
  a.ba(target, /*annul=*/true);
  a.mov(Reg::o0, 99);             // annulled for ba,a
  a.bind(target);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 0u);
}

TEST(Emulator, ConditionalBranchMatrix) {
  // For (x=1, y=2): x-y is negative, no Z, no V, borrow set.
  struct Case { Opcode op; bool taken; };
  const Case cases[] = {
      {Opcode::kBNE, true}, {Opcode::kBE, false}, {Opcode::kBL, true},
      {Opcode::kBGE, false}, {Opcode::kBLE, true}, {Opcode::kBG, false},
      {Opcode::kBLEU, true}, {Opcode::kBGU, false}, {Opcode::kBCS, true},
      {Opcode::kBCC, false}, {Opcode::kBNEG, true}, {Opcode::kBPOS, false},
      {Opcode::kBVC, true}, {Opcode::kBVS, false},
  };
  for (const auto& c : cases) {
    Assembler a("t");
    auto target = a.label();
    a.mov(Reg::o0, 1);
    a.cmp(Reg::o0, 2);
    a.emit(isa::encode_branch(c.op, false, 12));  // to "mov o1, 5" + halt
    a.nop();
    a.mov(Reg::o1, 1);  // fallthrough marker
    a.bind(target);
    a.mov(Reg::o2, 1);  // both paths
    a.halt();
    auto r = run_program(a);
    EXPECT_EQ(reg(r, Reg::o1) == 0u, c.taken) << isa::mnemonic(c.op);
  }
}

TEST(Emulator, CallAndRetl) {
  Assembler a("t");
  auto fn = a.label();
  a.mov(Reg::o0, 5);
  a.call(fn);
  a.mov(Reg::o1, 3);          // delay slot, executes before callee
  a.add(Reg::o2, Reg::o0, Reg::o1);  // after return
  a.halt();
  a.bind(fn);
  a.add(Reg::o0, Reg::o0, Reg::o1);  // o0 = 5+3
  a.retl();
  a.nop();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kHalted);
  EXPECT_EQ(reg(r, Reg::o0), 8u);
  EXPECT_EQ(reg(r, Reg::o2), 11u);
}

TEST(Emulator, SaveRestoreWindows) {
  Assembler a("t");
  a.mov(Reg::o0, 77);                // caller out
  a.save(Reg::o6, Reg::o6, -96);     // new window; sp adjusted
  a.mov(Reg::o0, 11);                // callee's own out
  a.add(Reg::l0, Reg::i0, 1);        // callee sees caller's o0 as i0
  a.restore(Reg::o1, Reg::l0, Reg::g0);  // result into caller's o1... careful:
  // restore rd is written in the *caller* window: o1 = l0 + g0 (callee's l0)
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 77u);   // caller window restored
  EXPECT_EQ(reg(r, Reg::o1), 78u);   // 77+1 computed in callee
}

TEST(Emulator, WindowOverflowDetected) {
  Assembler a("t");
  for (unsigned i = 0; i < isa::kNumWindows; ++i) a.save(Reg::o6, Reg::o6, -96);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kWindowOverflow);
}

TEST(Emulator, WindowUnderflowDetected) {
  Assembler a("t");
  a.restore(Reg::g0, Reg::g0, Reg::g0);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kWindowOverflow);
}

// ---- memory -------------------------------------------------------------------

TEST(Emulator, LoadStoreWidths) {
  Assembler a("t");
  const u32 buf = a.data_zero(32);
  a.set32(Reg::l0, buf);
  a.set32(Reg::o0, 0x11223344);
  a.st(Reg::o0, Reg::l0, 0);
  a.ld(Reg::o1, Reg::l0, 0);
  a.ldub(Reg::o2, Reg::l0, 0);   // 0x11
  a.ldsb(Reg::o3, Reg::l0, 3);   // 0x44 sign-extended (positive)
  a.lduh(Reg::o4, Reg::l0, 2);   // 0x3344
  a.sth(Reg::o0, Reg::l0, 8);    // stores low half 0x3344
  a.ldsh(Reg::o5, Reg::l0, 8);
  a.stb(Reg::o0, Reg::l0, 12);
  a.ldub(Reg::l1, Reg::l0, 12);  // 0x44
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o1), 0x11223344u);
  EXPECT_EQ(reg(r, Reg::o2), 0x11u);
  EXPECT_EQ(reg(r, Reg::o3), 0x44u);
  EXPECT_EQ(reg(r, Reg::o4), 0x3344u);
  EXPECT_EQ(reg(r, Reg::o5), 0x3344u);
  EXPECT_EQ(reg(r, Reg::l1), 0x44u);
}

TEST(Emulator, SignExtendingLoads) {
  Assembler a("t");
  const u32 buf = a.data_u32(0x80FF8000);
  a.set32(Reg::l0, buf);
  a.ldsb(Reg::o0, Reg::l0, 0);   // 0x80 -> -128
  a.ldsh(Reg::o1, Reg::l0, 2);   // 0x8000 -> -32768
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(static_cast<i32>(reg(r, Reg::o0)), -128);
  EXPECT_EQ(static_cast<i32>(reg(r, Reg::o1)), -32768);
}

TEST(Emulator, DoubleWordLoadStore) {
  Assembler a("t");
  const u32 buf = a.data_zero(16);
  a.set32(Reg::l0, buf);
  a.set32(Reg::o0, 0xAABBCCDD);
  a.set32(Reg::o1, 0x11223344);
  a.std_(Reg::o0, Reg::l0, 0);
  a.ldd(Reg::o2, Reg::l0, 0);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o2), 0xAABBCCDDu);
  EXPECT_EQ(reg(r, Reg::o3), 0x11223344u);
}

TEST(Emulator, MisalignedLoadTraps) {
  Assembler a("t");
  const u32 buf = a.data_zero(16);
  a.set32(Reg::l0, buf);
  a.ld(Reg::o0, Reg::l0, 2);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kMisalignedAccess);
}

TEST(Emulator, AtomicLdstubAndSwap) {
  Assembler a("t");
  const u32 buf = a.data_u32(0x0000'0000);
  a.set32(Reg::l0, buf);
  a.ldstub(Reg::o0, Reg::l0, 0);  // o0 = 0, mem byte = 0xFF
  a.ldub(Reg::o1, Reg::l0, 0);
  a.set32(Reg::o2, 0x1234);
  a.swap(Reg::o2, Reg::l0, 0);    // o2 <-> word
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o0), 0u);
  EXPECT_EQ(reg(r, Reg::o1), 0xFFu);
  EXPECT_EQ(reg(r, Reg::o2), 0xFF000000u);
  EXPECT_EQ(r.mem.load_u32(buf), 0x1234u);
}

TEST(Emulator, StoresAppearOnOffCoreTrace) {
  Assembler a("t");
  const u32 buf = a.data_zero(16);
  a.set32(Reg::l0, buf);
  a.mov(Reg::o0, 1);
  a.st(Reg::o0, Reg::l0, 0);
  a.mov(Reg::o0, 2);
  a.sth(Reg::o0, Reg::l0, 4);
  a.halt();
  auto r = run_program(a);
  const auto& w = r.emu->offcore().writes();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].addr, buf);
  EXPECT_EQ(w[0].size, 4);
  EXPECT_EQ(w[0].data, 1u);
  EXPECT_EQ(w[1].addr, buf + 4);
  EXPECT_EQ(w[1].size, 2);
  EXPECT_EQ(w[1].data, 2u);
}

TEST(Emulator, StdProducesTwoBusWrites) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);
  a.set32(Reg::o0, 1);
  a.set32(Reg::o1, 2);
  a.std_(Reg::o0, Reg::l0, 0);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->offcore().writes().size(), 2u);
}

// ---- misc state ------------------------------------------------------------------

TEST(Emulator, IllegalInstructionHalts) {
  Assembler a("t");
  a.emit(0xFFFFFFFF);
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kIllegalInstruction);
}

TEST(Emulator, TrapCodeReported) {
  Assembler a("t");
  a.ta(5);
  auto r = run_program(a);
  EXPECT_EQ(r.emu->halt_reason(), HaltReason::kTrap);
  EXPECT_EQ(r.emu->trap_code(), 5);
}

TEST(Emulator, StepLimitWatchdog) {
  Assembler a("t");
  auto loop = a.here();
  a.ba(loop);
  a.nop();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  e.load(p);
  EXPECT_EQ(e.run(100), HaltReason::kStepLimit);
}

TEST(Emulator, WryXorSemantics) {
  Assembler a("t");
  a.set32(Reg::o0, 0xFF00FF00);
  a.wry(Reg::o0, 0x0F0);        // Y = rs1 ^ imm
  a.rdy(Reg::o1);
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(reg(r, Reg::o1), 0xFF00FF00u ^ 0x0F0u);
}

// ---- fast-path cache coherence -----------------------------------------------------
//
// The dbbcache (decoded basic blocks) and lscache (one-entry raw page cache)
// must stay invisible under every event that can change the bytes behind
// them: the program writing its own code, external stores through the
// Memory API, and COW clone() re-sharing pages out from under a cached
// write pointer. tests/test_iss_fastpath.cpp carries the broad differential
// harness; these are the targeted invalidation regressions.

/// Single-instruction encoding of `mov rd, imm` via a throwaway assembler
/// (no hand-rolled instruction formats in the tests).
u32 encode_mov_imm(Reg rd, i32 imm) {
  Assembler t("enc");
  t.mov(rd, imm);
  Program p = t.finalize();
  return p.code[0];
}

TEST(FastPath, SelfModifyingStoreFlushesDbbcache) {
  // A loop whose body overwrites its own first instruction (mov %o0, 1 ->
  // mov %o0, 7) while that block is decoded AND currently executing: pass 1
  // must still run the old code to completion (fetch-before-execute), pass
  // 2 must run the new code. Accumulator ends at 1 + 7 = 8.
  const auto build = [] {
    Assembler a("t");
    const u32 donor = a.data_u32(encode_mov_imm(Reg::o0, 7));
    a.mov(Reg::l2, 0);                    // pass counter
    a.mov(Reg::l3, 0);                    // accumulator
    a.set32(Reg::l4, donor);
    auto loop = a.here();
    const u32 patch = a.current_pc();
    a.mov(Reg::o0, 1);                    // patch site
    a.add(Reg::l3, Reg::l3, Reg::o0);
    a.ld(Reg::o1, Reg::l4, 0);            // donor word
    a.set32(Reg::l5, patch);
    a.st(Reg::o1, Reg::l5, 0);            // self-modify
    a.add(Reg::l2, Reg::l2, 1);
    a.cmp(Reg::l2, 2);
    a.bne(loop);
    a.nop();
    a.halt();
    return a.finalize();
  };
  for (const bool fast : {true, false}) {
    Memory mem;
    Emulator e(mem);
    e.set_fast_path(fast);
    e.load(build());
    e.run();
    EXPECT_EQ(e.halt_reason(), HaltReason::kHalted) << "fast=" << fast;
    EXPECT_EQ(e.state().get_reg(isa::reg_num(Reg::l3)), 8u) << "fast=" << fast;
    if (fast) {
      EXPECT_GE(e.dbb_flushes(), 1u)
          << "store into cached code must flush the dbbcache";
    }
  }
}

TEST(FastPath, ExternalStoreInvalidatesDecodedBlocks) {
  // A store through the Memory API (not the emulator's own data path) lands
  // in a decoded block; Memory::revision() must carry the invalidation into
  // the next step().
  Assembler a("t");
  a.nop();
  const u32 patch = a.current_pc();
  a.mov(Reg::o0, 1);
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  e.load(p);
  e.step();  // decodes the block [nop, mov, ta 0]
  ASSERT_GE(e.dbb_blocks(), 1u);
  const u64 rev = mem.revision();
  mem.store_u32(patch, encode_mov_imm(Reg::o0, 7));
  EXPECT_GT(mem.revision(), rev);
  e.run();
  EXPECT_EQ(e.halt_reason(), HaltReason::kHalted);
  EXPECT_EQ(e.state().get_reg(isa::reg_num(Reg::o0)), 7u);
}

TEST(FastPath, CloneDoesNotShareStaleLscache) {
  // clone() re-shares every page, so the emulator's cached raw write
  // pointer into the pre-clone page would corrupt the snapshot if it kept
  // being used: the revision bump must force a resync and the next store
  // must COW-unshare. The clone is immutable history.
  Assembler a("t");
  const u32 buf = a.data_zero(16);
  a.set32(Reg::l0, buf);
  a.mov(Reg::o0, 1);
  a.st(Reg::o0, Reg::l0, 0);   // populates the lscache write entry
  a.mov(Reg::o0, 2);
  a.st(Reg::o0, Reg::l0, 4);   // post-clone store, same page
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  e.load(p);
  while (e.offcore().writes().empty() &&
         e.halt_reason() == HaltReason::kRunning) {
    e.step();
  }
  ASSERT_EQ(e.offcore().writes().size(), 1u);
  Memory snap = mem.clone();
  e.run();
  EXPECT_EQ(e.halt_reason(), HaltReason::kHalted);
  EXPECT_EQ(mem.load_u32(buf + 4), 2u);
  EXPECT_EQ(snap.load_u32(buf), 1u);      // pre-clone store visible
  EXPECT_EQ(snap.load_u32(buf + 4), 0u);  // post-clone store is not
}

TEST(FastPath, EmulatorOverCloneReadsFreshPages) {
  // The mirror image: after cloning, the *source* keeps running and
  // unshares pages; an emulator started over the clone must read the
  // snapshot's bytes, never the source's newer ones.
  Assembler a("t");
  const u32 buf = a.data_zero(16);
  a.set32(Reg::l0, buf);
  a.mov(Reg::o0, 5);
  a.st(Reg::o0, Reg::l0, 0);
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  e.load(p);
  e.run();
  ASSERT_EQ(mem.load_u32(buf), 5u);
  Memory snap = mem.clone();
  mem.store_u32(buf, 99);  // source moves on after the snapshot
  // Re-run the program over the snapshot: it must see 0 at buf (its own
  // fresh store path), and the source's 99 must never leak in.
  Emulator e2(snap);
  e2.load(p);
  e2.run();
  EXPECT_EQ(e2.halt_reason(), HaltReason::kHalted);
  EXPECT_EQ(snap.load_u32(buf), 5u);
  EXPECT_EQ(mem.load_u32(buf), 99u);
}

// ---- instruction trace / diversity -------------------------------------------------

TEST(Trace, DiversityCountsUniqueTypes) {
  Assembler a("t");
  a.mov(Reg::o0, 1);     // or
  a.add(Reg::o0, Reg::o0, 1);
  a.add(Reg::o0, Reg::o0, 1);  // same type, shouldn't add diversity
  a.sub(Reg::o1, Reg::o0, 1);
  a.halt();              // ta
  auto r = run_program(a);
  EXPECT_EQ(r.emu->trace().diversity(), 4u);  // or, add, sub, ta
  EXPECT_EQ(r.emu->trace().total(), 5u);
  EXPECT_EQ(r.emu->trace().count(Opcode::kADD), 2u);
}

TEST(Trace, MemoryAndIuTotals) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);      // data base is 1KiB-aligned: single sethi
  a.st(Reg::g0, Reg::l0, 0);  // 1 memory
  a.ld(Reg::o0, Reg::l0, 0);  // 1 memory
  a.halt();
  auto r = run_program(a);
  EXPECT_EQ(r.emu->trace().memory_total(), 2u);
  EXPECT_EQ(r.emu->trace().total(), 4u);
  EXPECT_EQ(r.emu->trace().integer_unit_total(), 3u);  // minus the trap
}

TEST(Trace, UnitDiversityDistinguishesUnits) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);
  a.ld(Reg::o0, Reg::l0, 0);
  a.sll(Reg::o1, Reg::o0, 2);
  a.halt();
  auto r = run_program(a);
  const auto& t = r.emu->trace();
  // Every type touches fetch; only ld touches dcache; only sll touches shift.
  EXPECT_EQ(t.unit_diversity(isa::FuncUnit::Fetch), t.diversity());
  EXPECT_EQ(t.unit_diversity(isa::FuncUnit::DCache), 1u);
  EXPECT_EQ(t.unit_diversity(isa::FuncUnit::Shift), 1u);
}

// ---- timing model ------------------------------------------------------------------

TEST(Timing, CyclesAtLeastInstructions) {
  Assembler a("t");
  for (int i = 0; i < 50; ++i) a.add(Reg::o0, Reg::o0, 1);
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  TimingModel tm;
  e.set_timing(&tm);
  e.load(p);
  e.run();
  EXPECT_GE(tm.cycles(), e.instret());
}

TEST(Timing, MulDivCostMore) {
  auto cycles_for = [](auto emit_fn) {
    Assembler a("t");
    a.mov(Reg::o0, 7);
    for (int i = 0; i < 100; ++i) emit_fn(a);
    a.halt();
    Program p = a.finalize();
    Memory mem;
    Emulator e(mem);
    TimingModel tm;
    e.set_timing(&tm);
    e.load(p);
    e.run();
    return tm.cycles();
  };
  const u64 adds = cycles_for([](Assembler& a) { a.add(Reg::o1, Reg::o0, 1); });
  const u64 muls = cycles_for([](Assembler& a) { a.umul(Reg::o1, Reg::o0, Reg::o0); });
  const u64 divs = cycles_for([](Assembler& a) { a.udiv(Reg::o1, Reg::o0, Reg::o0); });
  EXPECT_GT(muls, adds);
  EXPECT_GT(divs, muls);
}

TEST(Timing, CacheCapturesLocality) {
  // A tight loop over a small buffer should have high hit rates.
  Assembler a("t");
  const u32 buf = a.data_zero(64);
  a.set32(Reg::l0, buf);
  a.mov(Reg::l1, 200);
  auto loop = a.here();
  a.ld(Reg::o0, Reg::l0, 0);
  a.subcc(Reg::l1, Reg::l1, 1);
  a.bne(loop);
  a.nop();
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  TimingModel tm;
  e.set_timing(&tm);
  e.load(p);
  e.run();
  const auto s = tm.stats();
  EXPECT_GT(s.dcache_hits, 100u);
  EXPECT_LE(s.dcache_misses, 4u);
  EXPECT_GT(s.icache_hits, s.icache_misses);
}

TEST(Timing, StatsConsistent) {
  Assembler a("t");
  for (int i = 0; i < 10; ++i) a.add(Reg::o0, Reg::o0, 1);
  a.halt();
  Program p = a.finalize();
  Memory mem;
  Emulator e(mem);
  TimingModel tm;
  e.set_timing(&tm);
  e.load(p);
  e.run();
  const auto s = tm.stats();
  EXPECT_EQ(s.instructions, e.instret());
  EXPECT_GE(s.cpi(), 1.0);
}

// ---- ISS-level fault injection ------------------------------------------------------

TEST(IssFault, StuckAt1CorruptsResult) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);
  a.clr(Reg::o0);
  a.st(Reg::o0, Reg::l0, 0);
  a.halt();
  Program p = a.finalize();

  Memory mem;
  Emulator e(mem);
  e.load(p);
  IssFault f;
  f.phys_reg = isa::phys_reg_index(8, 0);  // %o0 in window 0
  f.bit = 3;
  f.model = IssFaultModel::kStuckAt1;
  f.inject_at_instr = 0;
  e.arm_fault(f);
  e.run();
  ASSERT_FALSE(e.offcore().writes().empty());
  EXPECT_EQ(e.offcore().writes()[0].data, 8u);  // bit 3 forced high
}

TEST(IssFault, StuckAt0OnUnusedBitIsSilent) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);
  a.mov(Reg::o0, 1);
  a.st(Reg::o0, Reg::l0, 0);
  a.halt();
  Program p = a.finalize();

  Memory mem;
  Emulator e(mem);
  e.load(p);
  IssFault f;
  f.phys_reg = isa::phys_reg_index(8, 0);
  f.bit = 7;  // value 1 never uses bit 7
  f.model = IssFaultModel::kStuckAt0;
  e.arm_fault(f);
  e.run();
  EXPECT_EQ(e.offcore().writes()[0].data, 1u);
}

TEST(IssFault, BitFlipIsTransient) {
  Assembler a("t");
  const u32 buf = a.data_zero(8);
  a.set32(Reg::l0, buf);
  a.mov(Reg::o0, 0);
  a.st(Reg::o0, Reg::l0, 0);   // first store sees the flip
  a.mov(Reg::o0, 0);           // overwrite clears the flipped bit
  a.st(Reg::o0, Reg::l0, 4);
  a.halt();
  Program p = a.finalize();

  Memory mem;
  Emulator e(mem);
  e.load(p);
  IssFault f;
  f.phys_reg = isa::phys_reg_index(8, 0);
  f.bit = 0;
  f.model = IssFaultModel::kBitFlip;
  f.inject_at_instr = 2;  // visible before the first store executes
  e.arm_fault(f);
  e.run();
  const auto& w = e.offcore().writes();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].data, 1u);  // flipped
  EXPECT_EQ(w[1].data, 0u);  // rewritten value is clean again
}

}  // namespace
}  // namespace issrtl::iss

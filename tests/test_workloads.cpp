// Workload suite tests: every kernel must run to a clean halt on the ISS,
// be deterministic, and reproduce the Table 1 characterisation shape the
// correlation study depends on.
#include <gtest/gtest.h>

#include "iss/emulator.hpp"
#include "workloads/workload.hpp"

namespace issrtl::workloads {
namespace {

using iss::Emulator;
using iss::HaltReason;

struct RunOutcome {
  HaltReason halt;
  u64 total = 0;
  u64 mem = 0;
  unsigned diversity = 0;
  std::size_t writes = 0;
  u32 checksum = 0;  // last off-core write payload
};

RunOutcome run(const std::string& name, const WorkloadParams& p = {}) {
  const isa::Program prog = build(name, p);
  Memory mem;
  Emulator e(mem);
  e.load(prog);
  RunOutcome o;
  o.halt = e.run(50'000'000);
  o.total = e.trace().total();
  o.mem = e.trace().memory_total();
  o.diversity = e.trace().diversity();
  o.writes = e.offcore().writes().size();
  o.checksum = o.writes == 0
                   ? 0
                   : static_cast<u32>(e.offcore().writes().back().data);
  return o;
}

// Every registered workload halts cleanly and produces off-core writes
// (without writes, no fault could ever manifest as a failure).
class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, RunsToCleanHalt) {
  const auto o = run(GetParam());
  EXPECT_EQ(o.halt, HaltReason::kHalted);
  EXPECT_GT(o.writes, 0u);
  EXPECT_GT(o.total, 100u);
}

TEST_P(AllWorkloads, Deterministic) {
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST_P(AllWorkloads, DataSeedChangesResultsNotCode) {
  WorkloadParams p1{.iterations = 2, .data_seed = 1};
  WorkloadParams p2{.iterations = 2, .data_seed = 2};
  const isa::Program prog1 = build(GetParam(), p1);
  const isa::Program prog2 = build(GetParam(), p2);
  // Identical code (the Fig. 3 premise: same Is, different inputs)...
  EXPECT_EQ(prog1.code, prog2.code);
  if (GetParam() == "intbench") return;  // no input table
  // ...different data.
  EXPECT_NE(prog1.data, prog2.data);
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& w : registry()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllWorkloads,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) { return info.param; });

// ---- Table 1 characterisation shape --------------------------------------------

TEST(Table1, AutomotiveDiversityClusters) {
  for (const char* n : {"puwmod", "canrdr", "ttsprk", "rspeed"}) {
    const auto o = run(n);
    EXPECT_GE(o.diversity, 45u) << n;
    EXPECT_LE(o.diversity, 49u) << n;
  }
}

TEST(Table1, SyntheticDiversityIsLow) {
  EXPECT_EQ(run("membench").diversity, 18u);
  EXPECT_EQ(run("intbench").diversity, 20u);
}

TEST(Table1, InstructionCountOrdering) {
  // puwmod > canrdr ~ ttsprk > rspeed >> membench >> intbench.
  const auto puwmod = run("puwmod"), canrdr = run("canrdr"),
             ttsprk = run("ttsprk"), rspeed = run("rspeed"),
             membench = run("membench"), intbench = run("intbench");
  EXPECT_GT(puwmod.total, canrdr.total);
  EXPECT_GT(canrdr.total, rspeed.total);
  EXPECT_GT(ttsprk.total, rspeed.total);
  EXPECT_GT(rspeed.total, membench.total);
  EXPECT_GT(membench.total, intbench.total);
  // Magnitudes in the Table 1 ballpark.
  EXPECT_GT(puwmod.total, 90'000u);
  EXPECT_LT(puwmod.total, 140'000u);
  EXPECT_GT(intbench.total, 1'500u);
  EXPECT_LT(intbench.total, 4'000u);
}

TEST(Table1, MemoryShares) {
  // membench is the memory-heavy synthetic; intbench has almost no memory
  // traffic (19 instructions in the paper's table).
  const auto membench = run("membench");
  const auto intbench = run("intbench");
  EXPECT_GT(static_cast<double>(membench.mem) / membench.total, 0.15);
  EXPECT_LT(intbench.mem, 25u);
  for (const char* n : {"puwmod", "canrdr", "ttsprk", "rspeed"}) {
    const auto o = run(n);
    EXPECT_GT(static_cast<double>(o.mem) / o.total, 0.05) << n;
    EXPECT_LT(static_cast<double>(o.mem) / o.total, 0.50) << n;
  }
}

// ---- premises the paper's experiments rest on -------------------------------------

TEST(Premises, DiversityIndependentOfIterations) {
  // Fig. 4: iterating a benchmark does not change its instruction-type set.
  for (const unsigned iters : {2u, 4u, 10u}) {
    const auto o = run("rspeed", {.iterations = iters, .data_seed = 1});
    EXPECT_EQ(o.diversity, run("rspeed").diversity) << iters;
  }
}

TEST(Premises, InstructionsScaleWithIterations) {
  const auto i2 = run("rspeed", {.iterations = 2});
  const auto i4 = run("rspeed", {.iterations = 4});
  const auto i10 = run("rspeed", {.iterations = 10});
  EXPECT_NEAR(static_cast<double>(i4.total) / i2.total, 2.0, 0.15);
  EXPECT_NEAR(static_cast<double>(i10.total) / i2.total, 5.0, 0.30);
  EXPECT_GT(i10.writes, i4.writes);
  EXPECT_GT(i4.writes, i2.writes);
}

TEST(Premises, TtsprkAndPuwmodShareTypeFootprintSize) {
  // Fig. 5 premise: "ttsprk and puwmod ... have exactly the same diversity".
  const auto t = run("ttsprk");
  const auto p = run("puwmod");
  EXPECT_NEAR(static_cast<double>(t.diversity), p.diversity, 1.0);
}

TEST(Excerpts, SetAHasExactly8Types) {
  for (const auto& n : excerpt_set_a()) {
    EXPECT_EQ(run(n).diversity, 8u) << n;
  }
}

TEST(Excerpts, SetBHasExactly11Types) {
  for (const auto& n : excerpt_set_b()) {
    EXPECT_EQ(run(n).diversity, 11u) << n;
  }
}

TEST(Excerpts, IdenticalCodeWithinSubsetDifferentData) {
  const WorkloadParams p;
  const auto a1 = build("a2time_x", p);
  const auto a2 = build("ttsprk_x", p);
  EXPECT_EQ(a1.code, a2.code);
  EXPECT_NE(a1.data, a2.data);
  const auto b1 = build("rspeed_x", p);
  const auto b2 = build("basefp_x", p);
  EXPECT_EQ(b1.code, b2.code);
  EXPECT_NE(b1.data, b2.data);
  EXPECT_NE(a1.code, b1.code);  // sets differ from each other
}

TEST(Excerpts, ChecksumVariesWithData) {
  int distinct = 0;
  u32 prev = 0;
  for (const u64 seed : {1ull, 2ull, 3ull}) {
    const auto o = run("a2time_x", {.iterations = 1, .data_seed = seed});
    if (o.checksum != prev) ++distinct;
    prev = o.checksum;
  }
  EXPECT_GE(distinct, 2);
}

TEST(Registry, LookupAndErrors) {
  EXPECT_EQ(find("rspeed").name, "rspeed");
  EXPECT_TRUE(find("membench").synthetic);
  EXPECT_TRUE(find("a2time_x").excerpt);
  EXPECT_FALSE(find("a2time").excerpt);
  EXPECT_THROW(find("nope"), std::out_of_range);
  EXPECT_EQ(table1_names().size(), 6u);
}

}  // namespace
}  // namespace issrtl::workloads

// Staged-pipeline tests (engine/pipeline.hpp): the restore -> clone/arm ->
// step -> classify driver must be an implementation detail of *scheduling*,
// never of *results*. The load-bearing claim: fault::outcome_hash — and
// every per-record field behind it — is bit-identical pipeline on or off,
// at every thread count x batch size x SIMD setting x prefetch depth, for
// both backends, across journal-resume cuts that cross the pipeline
// boundary, under graceful truncation, and with ISSRTL_FAIL_SITE throws
// landing on each stage.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/iss_backend.hpp"
#include "engine/pipeline.hpp"
#include "engine/rtl_backend.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

namespace fs = std::filesystem;

using fault::CampaignConfig;
using fault::CampaignResult;
using fault::Outcome;
using rtl::FaultModel;

isa::Program small_workload() {
  return workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
}

CampaignConfig small_cfg() {
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 24;
  cfg.models = {FaultModel::kStuckAt1};
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  return cfg;
}

fault::IssCampaignConfig iss_cfg() {
  fault::IssCampaignConfig cfg;
  cfg.samples = 24;
  cfg.models = {iss::IssFaultModel::kBitFlip};
  return cfg;
}

EngineOptions pipe_opts(bool pipeline, unsigned threads = 1,
                        unsigned batch = 1, bool simd = true) {
  EngineOptions opts;
  opts.pipeline = pipeline;
  opts.threads = threads;
  opts.batch_lanes = batch;
  opts.simd_lanes = simd;
  return opts;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(fault::outcome_hash(a), fault::outcome_hash(b));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].site.node, b.runs[i].site.node) << i;
    EXPECT_EQ(a.runs[i].site.inject_cycle, b.runs[i].site.inject_cycle) << i;
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    EXPECT_EQ(a.runs[i].latency_cycles, b.runs[i].latency_cycles) << i;
    EXPECT_EQ(a.runs[i].error, b.runs[i].error) << i;
  }
}

std::string scratch_dir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("issrtl_pipeline_" + std::string(info->name()) + "_" +
                        tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

fs::path journal_file_in(const std::string& dir) {
  fs::path found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "more than one journal file in " << dir;
    found = entry.path();
  }
  EXPECT_FALSE(found.empty()) << "no journal file in " << dir;
  return found;
}

std::vector<std::string> read_lines(const fs::path& file) {
  std::ifstream in(file);
  EXPECT_TRUE(in.good()) << file;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_file(const fs::path& file, const std::string& content) {
  std::ofstream out(file, std::ios::trunc);
  ASSERT_TRUE(out.good()) << file;
  out << content;
}

// ---- the bounded queue underneath every stage boundary ----------------------

TEST(BoundedQueue, FifoCapacityAndClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.try_pop(), 1);  // FIFO across the capacity boundary
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 2);
  q.close();
  EXPECT_FALSE(q.push(4));    // closed: producers bounce...
  EXPECT_EQ(q.pop(), 3);      // ...but queued items still drain
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.close();                  // idempotent
  EXPECT_EQ(q.peak_depth(), 2u);
}

TEST(BoundedQueue, PushBlocksUntilPopAndCountsStalls) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread t([&] {
    EXPECT_TRUE(q.push(2));  // blocks: capacity 1, slot occupied
  });
  // Don't pop until the producer has registered its stall, so the assert
  // below is deterministic rather than a race against thread startup.
  while (q.push_stalls() == 0) std::this_thread::yield();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  t.join();
  EXPECT_EQ(q.push_stalls(), 1u);
}

// ---- suffix-compare equivalence ---------------------------------------------

TEST(SuffixCompare, MatchesFullTraceCompareSemantics) {
  std::vector<BusRecord> golden(4);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    golden[i].addr = static_cast<u32>(0x100 + 4 * i);
    golden[i].data = i;
    golden[i].cycle = 10 * (i + 1);
  }
  // Identical suffix -> no divergence.
  EXPECT_FALSE(
      compare_suffix_writes(golden, 2, {golden[2], golden[3]}).diverged);
  // Payload mismatch at absolute index 3.
  std::vector<BusRecord> bad = {golden[2], golden[3]};
  bad[1].data ^= 1;
  const TraceDivergence d = compare_suffix_writes(golden, 2, bad);
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.cycle, bad[1].cycle);
  // Missing writes: divergence at the first absent index, stamped with the
  // faulty run's last write cycle.
  const TraceDivergence miss = compare_suffix_writes(golden, 2, {golden[2]});
  EXPECT_TRUE(miss.diverged);
  EXPECT_EQ(miss.index, 3u);
  EXPECT_EQ(miss.cycle, golden[2].cycle);
  // Extra write past the golden end.
  BusRecord extra = golden[3];
  extra.cycle = 99;
  const TraceDivergence ex =
      compare_suffix_writes(golden, 3, {golden[3], extra});
  EXPECT_TRUE(ex.diverged);
  EXPECT_EQ(ex.index, 4u);
  EXPECT_EQ(ex.cycle, 99u);
}

// ---- determinism: pipeline on == pipeline off -------------------------------

TEST(Pipeline, RtlBitIdenticalOnOffAcrossScheduleMatrix) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false));
  const u64 ref_hash = fault::outcome_hash(ref);

  for (const unsigned threads : {1u, 3u}) {
    for (const unsigned batch : {1u, 32u}) {
      for (const bool simd : {true, false}) {
        for (const bool pipeline : {true, false}) {
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " batch=" + std::to_string(batch) +
                       " simd=" + std::to_string(simd) +
                       " pipeline=" + std::to_string(pipeline));
          const CampaignResult r = run_rtl_campaign(
              prog, cfg, {}, pipe_opts(pipeline, threads, batch, simd));
          EXPECT_EQ(fault::outcome_hash(r), ref_hash);
          expect_identical(ref, r);
        }
      }
    }
  }
}

TEST(Pipeline, PrefetchDepthIsOutcomeNeutral) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false));
  for (const std::size_t depth : {std::size_t{1}, std::size_t{8}}) {
    EngineOptions opts = pipe_opts(true, 3, 32);
    opts.prefetch_depth = depth;
    const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
    SCOPED_TRACE(depth);
    expect_identical(ref, r);
  }
}

TEST(Pipeline, IssBitIdenticalOnOffAcrossThreads) {
  const auto prog = small_workload();
  const auto cfg = iss_cfg();
  const auto ref = run_iss_campaign_engine(prog, cfg, pipe_opts(false));
  for (const unsigned threads : {1u, 3u}) {
    for (const bool pipeline : {true, false}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " pipeline=" + std::to_string(pipeline));
      const auto r =
          run_iss_campaign_engine(prog, cfg, pipe_opts(pipeline, threads));
      ASSERT_EQ(r.runs.size(), ref.runs.size());
      for (std::size_t i = 0; i < r.runs.size(); ++i) {
        EXPECT_EQ(r.runs[i].failure, ref.runs[i].failure) << i;
        EXPECT_EQ(r.runs[i].latent, ref.runs[i].latent) << i;
        EXPECT_EQ(r.runs[i].latency_instr, ref.runs[i].latency_instr) << i;
        EXPECT_EQ(r.runs[i].engine_error, ref.runs[i].engine_error) << i;
      }
    }
  }
}

TEST(Pipeline, StageTalliesSurfaceOnlyWhenStaged) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult on =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(true, 1, 8));
  // Every staged spawn is either an adoption or a demand restore.
  EXPECT_GT(on.replay.restores_prefetched + on.replay.restores_demand, 0u);

  const CampaignResult off =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false, 1, 8));
  EXPECT_EQ(off.replay.restores_prefetched, 0u);
  EXPECT_EQ(off.replay.restores_demand, 0u);
  EXPECT_EQ(off.replay.snapshot_waits, 0u);
  EXPECT_EQ(off.replay.restore_queue_stalls, 0u);
  EXPECT_EQ(off.replay.classify_queue_stalls, 0u);
  EXPECT_EQ(off.replay.classify_backlog_peak, 0u);
}

// ---- journal resume across the pipeline boundary ----------------------------

TEST(Pipeline, JournalResumeCrossesPipelineBoundary) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false));

  // Staged run journals; cut mid-run; the synchronous loop resumes.
  {
    const std::string dir = scratch_dir("on_to_off");
    EngineOptions opts = pipe_opts(true, 1, 8);
    opts.journal_dir = dir;
    run_rtl_campaign(prog, cfg, {}, opts);
    const fs::path file = journal_file_in(dir);
    const auto lines = read_lines(file);
    ASSERT_EQ(lines.size(), 1u + ref.runs.size());
    std::string half;
    for (std::size_t i = 0; i < 1 + ref.runs.size() / 2; ++i) {
      half += lines[i];
      half += '\n';
    }
    write_file(file, half);
    EngineOptions resume = pipe_opts(false, 3);
    resume.journal_dir = dir;
    resume.resume = true;
    const CampaignResult r = run_rtl_campaign(prog, cfg, {}, resume);
    expect_identical(ref, r);
    EXPECT_EQ(r.replay.journal_hits, ref.runs.size() / 2);
  }

  // And the reverse cut: synchronous run journals, the staged driver
  // resumes (on a different schedule, for good measure).
  {
    const std::string dir = scratch_dir("off_to_on");
    EngineOptions opts = pipe_opts(false);
    opts.journal_dir = dir;
    run_rtl_campaign(prog, cfg, {}, opts);
    const fs::path file = journal_file_in(dir);
    const auto lines = read_lines(file);
    std::string half;
    for (std::size_t i = 0; i < 1 + ref.runs.size() / 2; ++i) {
      half += lines[i];
      half += '\n';
    }
    write_file(file, half);
    EngineOptions resume = pipe_opts(true, 3, 32);
    resume.journal_dir = dir;
    resume.resume = true;
    const CampaignResult r = run_rtl_campaign(prog, cfg, {}, resume);
    expect_identical(ref, r);
    EXPECT_EQ(r.replay.journal_hits, ref.runs.size() / 2);
  }
}

// ---- graceful truncation through the staged driver --------------------------

TEST(Pipeline, StopFlagTruncatesStagedDriverThenResumeCompletes) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false));

  const std::string dir = scratch_dir("stop");
  std::atomic<bool> stop{false};
  EngineOptions opts = pipe_opts(true, 1, 8);
  opts.journal_dir = dir;
  opts.stop = &stop;
  opts.progress_stride = 1;
  opts.on_progress = [&stop](const EngineProgress& p) {
    if (p.completed >= 3) stop.store(true, std::memory_order_relaxed);
  };
  const CampaignResult cut = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_TRUE(cut.truncated);
  EXPECT_GE(cut.completed_sites, 3u);
  EXPECT_LT(cut.completed_sites, cut.total_sites);

  EngineOptions resume = pipe_opts(true, 3, 32);
  resume.journal_dir = dir;
  resume.resume = true;
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, resume);
  expect_identical(ref, r);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.replay.journal_hits, cut.completed_sites);
}

TEST(Pipeline, DeadlineTruncatesStagedDriver) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  EngineOptions opts = pipe_opts(true, 1, 8);
  opts.deadline_ms = 1;  // expires long before 24 RTL sites can finish
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LT(r.completed_sites, r.total_sites);
}

// ---- ISSRTL_FAIL_SITE isolation on every stage ------------------------------

// A deterministic throw at each stage must classify that site kEngineError
// — with a byte-identical error record (including the retry-attempt count)
// pipeline on or off — and a :once throw must retry to a clean campaign.
TEST(Pipeline, FailSiteLandsOnEveryStageRtl) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref =
      run_rtl_campaign(prog, cfg, {}, pipe_opts(false));

  for (const char* stage : {"restore", "arm", "step", "classify"}) {
    SCOPED_TRACE(stage);
    std::string error_on;
    std::string error_off;
    for (const bool pipeline : {true, false}) {
      EngineOptions opts = pipe_opts(pipeline, 1, 8);
      opts.fail_sites = std::string("3:") + stage;
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      ASSERT_EQ(r.runs.size(), ref.runs.size());
      for (std::size_t i = 0; i < r.runs.size(); ++i) {
        if (i == 3) {
          EXPECT_EQ(r.runs[i].outcome, Outcome::kEngineError) << pipeline;
          EXPECT_NE(r.runs[i].error.find("ISSRTL_FAIL_SITE"),
                    std::string::npos)
              << r.runs[i].error;
          (pipeline ? error_on : error_off) = r.runs[i].error;
        } else {
          EXPECT_EQ(r.runs[i].outcome, ref.runs[i].outcome) << i;
          EXPECT_EQ(r.runs[i].latency_cycles, ref.runs[i].latency_cycles)
              << i;
        }
      }
      EXPECT_EQ(r.replay.sites_retried, 1u) << pipeline;
      EXPECT_EQ(r.replay.sites_engine_error, 1u) << pipeline;
    }
    EXPECT_EQ(error_on, error_off);

    // Transient (:once): the retry succeeds and the campaign is clean.
    EngineOptions once = pipe_opts(true, 1, 8);
    once.fail_sites = std::string("3:once:") + stage;
    const CampaignResult r = run_rtl_campaign(prog, cfg, {}, once);
    expect_identical(ref, r);
    EXPECT_EQ(r.replay.sites_retried, 1u);
    EXPECT_EQ(r.replay.sites_engine_error, 0u);
  }
}

TEST(Pipeline, FailSiteLandsOnEveryStageIss) {
  const auto prog = small_workload();
  const auto cfg = iss_cfg();
  const auto ref = run_iss_campaign_engine(prog, cfg, pipe_opts(false));

  for (const char* stage : {"restore", "arm", "step", "classify"}) {
    SCOPED_TRACE(stage);
    std::string error_on;
    std::string error_off;
    for (const bool pipeline : {true, false}) {
      EngineOptions opts = pipe_opts(pipeline);
      opts.fail_sites = std::string("2:") + stage;
      const auto r = run_iss_campaign_engine(prog, cfg, opts);
      ASSERT_EQ(r.runs.size(), ref.runs.size());
      for (std::size_t i = 0; i < r.runs.size(); ++i) {
        if (i == 2) {
          EXPECT_TRUE(r.runs[i].engine_error) << pipeline;
          (pipeline ? error_on : error_off) = r.runs[i].error;
        } else {
          EXPECT_FALSE(r.runs[i].engine_error) << i;
          EXPECT_EQ(r.runs[i].failure, ref.runs[i].failure) << i;
          EXPECT_EQ(r.runs[i].latency_instr, ref.runs[i].latency_instr) << i;
        }
      }
      EXPECT_EQ(r.replay.sites_retried, 1u) << pipeline;
      EXPECT_EQ(r.replay.sites_engine_error, 1u) << pipeline;
    }
    EXPECT_EQ(error_on, error_off);

    EngineOptions once = pipe_opts(true);
    once.fail_sites = std::string("2:once:") + stage;
    const auto r = run_iss_campaign_engine(prog, cfg, once);
    ASSERT_EQ(r.runs.size(), ref.runs.size());
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      EXPECT_FALSE(r.runs[i].engine_error) << i;
      EXPECT_EQ(r.runs[i].failure, ref.runs[i].failure) << i;
      EXPECT_EQ(r.runs[i].latency_instr, ref.runs[i].latency_instr) << i;
    }
    EXPECT_EQ(r.replay.sites_retried, 1u);
    EXPECT_EQ(r.replay.sites_engine_error, 0u);
  }
}

}  // namespace
}  // namespace issrtl::engine

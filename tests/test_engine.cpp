// Campaign-engine tests: determinism under sharding (N-thread runs must be
// bit-identical to serial), checkpoint/restore correctness for both
// simulation vehicles, and equivalence of the engine's fast paths
// (checkpointing, early divergence cut-off) with the naive serial algorithm.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "engine/engine.hpp"
#include "engine/iss_backend.hpp"
#include "engine/rtl_backend.hpp"
#include "engine/stats.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

using fault::CampaignConfig;
using fault::CampaignResult;
using fault::IssCampaignConfig;
using rtl::FaultModel;

isa::Program small_workload() {
  return workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
}

CampaignConfig rtl_cfg(std::size_t samples) {
  CampaignConfig cfg;
  cfg.samples = samples;
  cfg.models = {FaultModel::kStuckAt1, FaultModel::kOpenLine};
  // Spread inject instants so the rolling checkpoint actually has to move.
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  return cfg;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.golden_cycles, b.golden_cycles);
  EXPECT_EQ(a.golden_instret, b.golden_instret);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const fault::InjectionResult& x = a.runs[i];
    const fault::InjectionResult& y = b.runs[i];
    EXPECT_EQ(x.site.node, y.site.node) << i;
    EXPECT_EQ(x.site.bit, y.site.bit) << i;
    EXPECT_EQ(x.site.inject_cycle, y.site.inject_cycle) << i;
    EXPECT_EQ(x.node_name, y.node_name) << i;
    EXPECT_EQ(x.outcome, y.outcome) << i;
    EXPECT_EQ(x.latency_cycles, y.latency_cycles) << i;
    EXPECT_EQ(x.halt, y.halt) << i;
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    EXPECT_EQ(a.per_model[m].failures, b.per_model[m].failures);
    EXPECT_EQ(a.per_model[m].hangs, b.per_model[m].hangs);
    EXPECT_EQ(a.per_model[m].latent, b.per_model[m].latent);
    EXPECT_EQ(a.per_model[m].silent, b.per_model[m].silent);
    EXPECT_EQ(a.per_model[m].max_latency, b.per_model[m].max_latency);
    EXPECT_DOUBLE_EQ(a.per_model[m].mean_latency, b.per_model[m].mean_latency);
    EXPECT_DOUBLE_EQ(a.per_model[m].pf(), b.per_model[m].pf());
  }
}

// ---- determinism under sharding ---------------------------------------------

TEST(Engine, RtlParallelBitIdenticalToSerial) {
  const auto prog = small_workload();
  const auto cfg = rtl_cfg(40);
  EngineOptions serial;
  serial.threads = 1;
  EngineOptions parallel;
  parallel.threads = 4;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, serial);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, parallel);
  expect_identical(a, b);
}

TEST(Engine, IssParallelBitIdenticalToSerial) {
  const auto prog = small_workload();
  IssCampaignConfig cfg;
  cfg.samples = 60;
  cfg.models = {iss::IssFaultModel::kStuckAt1, iss::IssFaultModel::kBitFlip};
  EngineOptions serial;
  serial.threads = 1;
  EngineOptions parallel;
  parallel.threads = 4;
  const auto a = run_iss_campaign_engine(prog, cfg, serial);
  const auto b = run_iss_campaign_engine(prog, cfg, parallel);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].failure, b.runs[i].failure) << i;
    EXPECT_EQ(a.runs[i].latent, b.runs[i].latent) << i;
    EXPECT_EQ(a.runs[i].latency_instr, b.runs[i].latency_instr) << i;
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    EXPECT_EQ(a.per_model[m].failures, b.per_model[m].failures);
    EXPECT_EQ(a.per_model[m].latent, b.per_model[m].latent);
    EXPECT_DOUBLE_EQ(a.per_model[m].pf(), b.per_model[m].pf());
  }
}

TEST(Engine, FaultListSeedAndShardStable) {
  // The engine assigns site i to shard i % threads and stores record i in
  // slot i — the fault list itself must not depend on who consumes it.
  Memory mem;
  rtlcore::Leon3Core core(mem);
  const auto cfg = rtl_cfg(64);
  const auto a = fault::build_fault_list(core.sim(), cfg, 10000);
  const auto b = fault::build_fault_list(core.sim(), cfg, 10000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].inject_cycle, b[i].inject_cycle);
    EXPECT_EQ(a[i].model, b[i].model);
  }
}

// ---- fast-path equivalence --------------------------------------------------

TEST(Engine, CheckpointingDoesNotChangeResults) {
  const auto prog = small_workload();
  const auto cfg = rtl_cfg(30);
  EngineOptions naive;
  naive.threads = 1;
  naive.checkpoint = false;
  naive.early_stop = false;
  EngineOptions checkpointed;
  checkpointed.threads = 1;
  checkpointed.checkpoint = true;
  checkpointed.early_stop = false;
  expect_identical(run_rtl_campaign(prog, cfg, {}, naive),
                   run_rtl_campaign(prog, cfg, {}, checkpointed));
}

TEST(Engine, EarlyStopPreservesClassification) {
  const auto prog = small_workload();
  const auto cfg = rtl_cfg(30);
  EngineOptions slow;
  slow.threads = 1;
  slow.early_stop = false;
  EngineOptions fast;
  fast.threads = 1;
  fast.early_stop = true;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, slow);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, fast);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    // halt may legitimately differ (early-stopped runs keep kRunning);
    // outcome, latency and therefore pf() may not.
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    EXPECT_EQ(a.runs[i].latency_cycles, b.runs[i].latency_cycles) << i;
  }
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    EXPECT_DOUBLE_EQ(a.per_model[m].pf(), b.per_model[m].pf());
  }
}

TEST(Engine, HangFastForwardPreservesClassification) {
  // Fetch-unit faults are the hang factory: a stuck fetch_pc or redirect
  // bit freezes or derails the front end. Exhaustive over iu.fe.
  const auto prog = small_workload();
  CampaignConfig cfg;
  cfg.unit_prefix = "iu.fe";
  cfg.samples = 0;  // exhaustive: every bit, 66 sites
  cfg.models = {FaultModel::kStuckAt0};
  EngineOptions slow;
  slow.threads = 1;
  slow.hang_fast_forward = false;
  EngineOptions fast;
  fast.threads = 1;
  fast.hang_fast_forward = true;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, slow);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, fast);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  std::size_t hangs = 0;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << a.runs[i].node_name;
    EXPECT_EQ(a.runs[i].latency_cycles, b.runs[i].latency_cycles) << i;
    hangs += b.runs[i].outcome == fault::Outcome::kHang;
  }
  EXPECT_GT(hangs, 0u) << "expected at least one hang among fetch faults";
}

// Cross-refactor regression fixture: per-model outcome counts and a hash of
// the full (outcome, latency) sequence captured from the pre-SoA-kernel
// serial driver (PR 1) for this exact (workload, config, seed). The campaign
// is fully deterministic, so any divergence — at any thread count, and at
// any checkpoint-ladder configuration (disabled, auto, explicit stride) —
// means a semantic change in the kernel, the memory model or the engine.
TEST(Engine, ResultsBitIdenticalToPreRefactorBaseline) {
  const auto prog = workloads::build("rspeed", {.iterations = 1, .data_seed = 1});
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 60;
  cfg.models = {FaultModel::kStuckAt1};
  cfg.inject_time = fault::InjectTime::kUniformRandom;

  for (const unsigned threads : {1u, 3u}) {
    for (const u64 stride : {u64{0}, kLadderStrideAuto, u64{977}}) {
      EngineOptions opts;
      opts.threads = threads;
      opts.ladder_stride = stride;
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      EXPECT_EQ(r.golden_cycles, 134966u) << threads;
      EXPECT_EQ(r.golden_instret, 41181u) << threads;
      const fault::CampaignStats s = r.stats_for(FaultModel::kStuckAt1);
      EXPECT_EQ(s.runs, 60u) << threads;
      EXPECT_EQ(s.failures, 13u) << threads;
      EXPECT_EQ(s.hangs, 0u) << threads;
      EXPECT_EQ(s.latent, 2u) << threads;
      EXPECT_EQ(s.silent, 45u) << threads;
      EXPECT_EQ(s.max_latency, 131258u) << threads;
      EXPECT_EQ(fault::outcome_hash(r), 53577475502873108ull)
          << threads << " threads, stride " << stride;
    }
  }
}

// ---- checkpoint correctness -------------------------------------------------

TEST(Checkpoint, RtlCoreResumesToIdenticalRun) {
  const auto prog = small_workload();

  Memory ref_mem;
  rtlcore::Leon3Core ref(ref_mem);
  ref.load(prog);
  ASSERT_EQ(ref.run(), iss::HaltReason::kHalted);

  Memory mem;
  rtlcore::Leon3Core core(mem);
  core.load(prog);
  const u64 mid = ref.cycles() / 2;
  while (core.cycles() < mid) core.step();
  const rtlcore::CoreCheckpoint ck = core.checkpoint();
  const Memory ck_mem = mem.clone();

  // Run to completion once...
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);
  const u64 cycles_a = core.cycles();
  const auto writes_a = core.offcore().writes();
  const iss::ArchState state_a = core.arch_state();

  // ...then rewind to the checkpoint and run again.
  core.sim().clear_faults();
  core.restore(ck);
  mem = ck_mem.clone();
  EXPECT_EQ(core.cycles(), mid);
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);

  EXPECT_EQ(core.cycles(), cycles_a);
  EXPECT_EQ(core.instret(), ref.instret());
  const auto& writes_b = core.offcore().writes();
  ASSERT_EQ(writes_a.size(), writes_b.size());
  for (std::size_t i = 0; i < writes_a.size(); ++i) {
    EXPECT_TRUE(writes_a[i].same_payload(writes_b[i])) << i;
    EXPECT_EQ(writes_a[i].cycle, writes_b[i].cycle) << i;
  }
  EXPECT_EQ(state_a, core.arch_state());
  EXPECT_TRUE(core.memory().equals(ref_mem));
  EXPECT_FALSE(core.offcore().compare_writes(ref.offcore()).diverged);
}

TEST(Checkpoint, IssEmulatorResumesToIdenticalRun) {
  const auto prog = small_workload();

  Memory ref_mem;
  iss::Emulator ref(ref_mem);
  ref.load(prog);
  ASSERT_EQ(ref.run(), iss::HaltReason::kHalted);

  Memory mem;
  iss::Emulator emu(mem);
  emu.load(prog);
  const u64 mid = ref.instret() / 2;
  while (emu.instret() < mid) emu.step();
  const iss::EmuCheckpoint ck = emu.checkpoint();
  const Memory ck_mem = mem.clone();

  ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);
  const u64 instret_a = emu.instret();
  const auto writes_a = emu.offcore().writes();
  const iss::ArchState state_a = emu.state();
  const unsigned diversity_a = emu.trace().diversity();

  emu.clear_faults();
  emu.restore(ck);
  mem = ck_mem.clone();
  EXPECT_EQ(emu.instret(), mid);
  ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);

  EXPECT_EQ(emu.instret(), instret_a);
  EXPECT_EQ(emu.trace().diversity(), diversity_a);
  const auto& writes_b = emu.offcore().writes();
  ASSERT_EQ(writes_a.size(), writes_b.size());
  for (std::size_t i = 0; i < writes_a.size(); ++i) {
    EXPECT_TRUE(writes_a[i].same_payload(writes_b[i])) << i;
  }
  EXPECT_EQ(state_a, emu.state());
  EXPECT_TRUE(emu.memory().equals(ref_mem));
}

TEST(Checkpoint, RestoreRejectsForeignRegistry) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  rtlcore::CoreCheckpoint ck = core.checkpoint();
  ck.node_values.pop_back();
  EXPECT_THROW(core.restore(ck), std::invalid_argument);
}

// ---- engine plumbing --------------------------------------------------------

TEST(Engine, ProgressIsMonotonicAndComplete) {
  const auto prog = small_workload();
  CampaignConfig cfg;
  cfg.samples = 12;
  EngineOptions opts;
  opts.threads = 2;
  opts.progress_stride = 1;
  std::size_t last = 0;
  std::size_t calls = 0;
  std::size_t final_total = 0;
  opts.on_progress = [&](const EngineProgress& p) {
    EXPECT_GE(p.completed, last);  // serialized under the engine's lock
    last = p.completed;
    final_total = p.total;
    ++calls;
  };
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_EQ(r.runs.size(), 12u);
  EXPECT_EQ(last, 12u);
  EXPECT_EQ(final_total, 12u);
  EXPECT_GE(calls, 2u);
}

TEST(Engine, ShardStreamsAreDeterministicAndDecorrelated) {
  Xoshiro256 a0 = shard_stream(2015, 0);
  Xoshiro256 a0_again = shard_stream(2015, 0);
  Xoshiro256 a1 = shard_stream(2015, 1);
  EXPECT_EQ(a0.next(), a0_again.next());
  int same = 0;
  for (int i = 0; i < 16; ++i) same += a0.next() == a1.next();
  EXPECT_LT(same, 2);
}

TEST(Engine, ResolveThreadsClampsToSites) {
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(2, 100), 2u);
  EXPECT_GE(resolve_threads(0, 100), 1u);
}

// RAII helper: set an environment variable for one test, restore after.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Engine, OptionsFromEnvParsesValidValues) {
  ScopedEnv t("ISSRTL_THREADS", "6");
  ScopedEnv s("ISSRTL_CKPT_STRIDE", "977");
  ScopedEnv m("ISSRTL_CKPT_MB", "64");
  ScopedEnv b("ISSRTL_BATCH", "16");
  const EngineOptions opts = options_from_env();
  EXPECT_EQ(opts.threads, 6u);
  EXPECT_EQ(opts.ladder_stride, 977u);
  EXPECT_EQ(opts.ladder_max_bytes, std::size_t{64} << 20);
  EXPECT_EQ(opts.batch_lanes, 16u);
}

TEST(Engine, OptionsFromEnvAcceptsAutoStrideAndZero) {
  {
    ScopedEnv s("ISSRTL_CKPT_STRIDE", "auto");
    EXPECT_EQ(options_from_env().ladder_stride, kLadderStrideAuto);
  }
  {
    ScopedEnv s("ISSRTL_CKPT_STRIDE", "0");
    EXPECT_EQ(options_from_env().ladder_stride, 0u);
  }
}

TEST(Engine, OptionsFromEnvLeavesUnsetAndEmptyAlone) {
  ScopedEnv t("ISSRTL_THREADS", nullptr);
  ScopedEnv s("ISSRTL_CKPT_STRIDE", "");
  EngineOptions base;
  base.threads = 3;
  base.ladder_stride = 55;
  const EngineOptions opts = options_from_env(base);
  EXPECT_EQ(opts.threads, 3u);
  EXPECT_EQ(opts.ladder_stride, 55u);
}

TEST(Engine, OptionsFromEnvRejectsMalformedValues) {
  // strtoul-style parsing used to fold all of these into 0 or a wrapped
  // huge number and silently run a misconfigured campaign.
  const char* bad[] = {"abc", "-4", "4x", " 4", "+4", "0x10",
                       "99999999999999999999999999"};
  for (const char* v : bad) {
    ScopedEnv t("ISSRTL_THREADS", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
  {
    ScopedEnv s("ISSRTL_CKPT_STRIDE", "fast");  // only "auto" is special
    EXPECT_THROW(options_from_env(), std::invalid_argument);
  }
  {
    ScopedEnv m("ISSRTL_CKPT_MB", "12MB");
    EXPECT_THROW(options_from_env(), std::invalid_argument);
  }
  {
    ScopedEnv b("ISSRTL_BATCH", "lots");
    EXPECT_THROW(options_from_env(), std::invalid_argument);
  }
  {
    // Error messages must name the offending variable, or the user cannot
    // tell which of the four knobs to fix.
    ScopedEnv t("ISSRTL_THREADS", "abc");
    try {
      options_from_env();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("ISSRTL_THREADS"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Engine, OptionsFromEnvRejectsOversizedBatch) {
  ScopedEnv b("ISSRTL_BATCH", "1000000");
  EXPECT_THROW(options_from_env(), std::invalid_argument);
}

TEST(Engine, OptionsFromEnvParsesSimdFlag) {
  {
    ScopedEnv s("ISSRTL_SIMD", "0");
    EXPECT_FALSE(options_from_env().simd_lanes);
  }
  {
    ScopedEnv s("ISSRTL_SIMD", "1");
    EXPECT_TRUE(options_from_env().simd_lanes);
  }
  {
    ScopedEnv s("ISSRTL_SIMD", nullptr);
    EngineOptions base;
    base.simd_lanes = false;
    EXPECT_FALSE(options_from_env(base).simd_lanes);  // unset: untouched
  }
  for (const char* v : {"2", "yes", "on", "-1", "true"}) {
    ScopedEnv s("ISSRTL_SIMD", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesRefillFlag) {
  {
    ScopedEnv s("ISSRTL_REFILL", "0");
    EXPECT_FALSE(options_from_env().lane_refill);
  }
  {
    ScopedEnv s("ISSRTL_REFILL", "1");
    EXPECT_TRUE(options_from_env().lane_refill);
  }
  {
    ScopedEnv s("ISSRTL_REFILL", nullptr);
    EngineOptions base;
    base.lane_refill = false;
    EXPECT_FALSE(options_from_env(base).lane_refill);  // unset: untouched
  }
  for (const char* v : {"2", "off", "-1", "true"}) {
    ScopedEnv s("ISSRTL_REFILL", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesSimdMinLive) {
  {
    ScopedEnv s("ISSRTL_SIMD_MIN_LIVE", "12");
    EXPECT_EQ(options_from_env().simd_min_live, 12u);
  }
  {
    ScopedEnv s("ISSRTL_SIMD_MIN_LIVE", "0");  // 0 = auto (one tile)
    EXPECT_EQ(options_from_env().simd_min_live, 0u);
  }
  {
    ScopedEnv s("ISSRTL_SIMD_MIN_LIVE", nullptr);
    EngineOptions base;
    base.simd_min_live = 7;
    EXPECT_EQ(options_from_env(base).simd_min_live, 7u);  // unset: untouched
  }
  {
    ScopedEnv s("ISSRTL_SIMD_MIN_LIVE", "1025");  // > kMaxBatchLanes
    EXPECT_THROW(options_from_env(), std::invalid_argument);
  }
  for (const char* v : {"abc", "-4", "8x", " 8", "0x8"}) {
    ScopedEnv s("ISSRTL_SIMD_MIN_LIVE", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesSimdTile) {
  for (const unsigned tile : {2u, 8u, 16u, 64u}) {
    ScopedEnv s("ISSRTL_SIMD_TILE", std::to_string(tile).c_str());
    EXPECT_EQ(options_from_env().simd_tile, tile);
  }
  {
    ScopedEnv s("ISSRTL_SIMD_TILE", "auto");  // CPUID dispatch
    EngineOptions base;
    base.simd_tile = 16;
    EXPECT_EQ(options_from_env(base).simd_tile, 0u);
  }
  {
    ScopedEnv s("ISSRTL_SIMD_TILE", "0");  // numeric spelling of auto
    EXPECT_EQ(options_from_env().simd_tile, 0u);
  }
  {
    ScopedEnv s("ISSRTL_SIMD_TILE", nullptr);
    EngineOptions base;
    base.simd_tile = 8;
    EXPECT_EQ(options_from_env(base).simd_tile, 8u);  // unset: untouched
  }
  // Non-power-of-two, too small, too large, trailing junk, non-numeric.
  for (const char* v : {"3", "1", "65", "128", "16x", "wide", "-8"}) {
    ScopedEnv s("ISSRTL_SIMD_TILE", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesJournalAndResume) {
  {
    ScopedEnv j("ISSRTL_JOURNAL", "/tmp/issrtl-env-journal");
    EXPECT_EQ(options_from_env().journal_dir, "/tmp/issrtl-env-journal");
  }
  {
    ScopedEnv j("ISSRTL_JOURNAL", nullptr);
    EngineOptions base;
    base.journal_dir = "keep";
    EXPECT_EQ(options_from_env(base).journal_dir, "keep");  // unset: untouched
  }
  {
    ScopedEnv r("ISSRTL_RESUME", "1");
    EXPECT_TRUE(options_from_env().resume);
  }
  {
    ScopedEnv r("ISSRTL_RESUME", "0");
    EXPECT_FALSE(options_from_env().resume);
  }
  // Resume is a boolean switch, not a count — anything but 0/1 is a typo
  // that must not silently decide whether journaled work is trusted.
  for (const char* v : {"2", "x", "yes", "-1", "true", "01x"}) {
    ScopedEnv r("ISSRTL_RESUME", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesMixedFidelity) {
  {
    ScopedEnv m("ISSRTL_MIXED", "1");
    EXPECT_TRUE(options_from_env().mixed_fidelity);
  }
  {
    ScopedEnv m("ISSRTL_MIXED", "0");
    EXPECT_FALSE(options_from_env().mixed_fidelity);
  }
  {
    ScopedEnv m("ISSRTL_MIXED", nullptr);
    EngineOptions base;
    base.mixed_fidelity = true;
    EXPECT_TRUE(options_from_env(base).mixed_fidelity);  // unset: untouched
  }
  // Mixed fidelity changes the experiment (it is folded into the campaign
  // key) — a typo must not silently pick which experiment ran.
  for (const char* v : {"2", "x", "yes", "-1", "true", "01x", " 1"}) {
    ScopedEnv m("ISSRTL_MIXED", v);
    try {
      options_from_env();
      FAIL() << "expected std::invalid_argument for '" << v << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("ISSRTL_MIXED"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Engine, OptionsFromEnvParsesIssFastPath) {
  {
    ScopedEnv f("ISSRTL_ISS_FAST", "0");
    EXPECT_FALSE(options_from_env().iss_fast_path);
  }
  {
    ScopedEnv f("ISSRTL_ISS_FAST", "1");
    EXPECT_TRUE(options_from_env().iss_fast_path);
  }
  {
    ScopedEnv f("ISSRTL_ISS_FAST", nullptr);
    EngineOptions base;
    base.iss_fast_path = false;
    EXPECT_FALSE(options_from_env(base).iss_fast_path);  // unset: untouched
  }
  for (const char* v : {"2", "fast", "-1", "true", "1 "}) {
    ScopedEnv f("ISSRTL_ISS_FAST", v);
    try {
      options_from_env();
      FAIL() << "expected std::invalid_argument for '" << v << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("ISSRTL_ISS_FAST"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Engine, OptionsFromEnvParsesDeadline) {
  {
    ScopedEnv d("ISSRTL_DEADLINE_MS", "1500");
    EXPECT_EQ(options_from_env().deadline_ms, 1500u);
  }
  {
    ScopedEnv d("ISSRTL_DEADLINE_MS", "0");  // 0 = no deadline
    EXPECT_EQ(options_from_env().deadline_ms, 0u);
  }
  for (const char* v : {"-1", "1x", "abc", " 5", "0x10", "1.5"}) {
    ScopedEnv d("ISSRTL_DEADLINE_MS", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvParsesPipeline) {
  {
    ScopedEnv p("ISSRTL_PIPELINE", "0");
    EXPECT_FALSE(options_from_env().pipeline);
  }
  {
    ScopedEnv p("ISSRTL_PIPELINE", "1");
    EXPECT_TRUE(options_from_env().pipeline);
  }
  {
    ScopedEnv p("ISSRTL_PIPELINE", nullptr);
    EngineOptions base;
    base.pipeline = false;
    EXPECT_FALSE(options_from_env(base).pipeline);  // unset: untouched
  }
  for (const char* v : {"2", "staged", "-1", "true", "01x", " 1"}) {
    ScopedEnv p("ISSRTL_PIPELINE", v);
    try {
      options_from_env();
      FAIL() << "expected std::invalid_argument for '" << v << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("ISSRTL_PIPELINE"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Engine, OptionsFromEnvParsesPrefetchDepth) {
  {
    ScopedEnv d("ISSRTL_PREFETCH_DEPTH", "8");
    EXPECT_EQ(options_from_env().prefetch_depth, 8u);
  }
  {
    ScopedEnv d("ISSRTL_PREFETCH_DEPTH", "1");  // the minimum legal depth
    EXPECT_EQ(options_from_env().prefetch_depth, 1u);
  }
  {
    ScopedEnv d("ISSRTL_PREFETCH_DEPTH", nullptr);
    EngineOptions base;
    base.prefetch_depth = 5;
    EXPECT_EQ(options_from_env(base).prefetch_depth, 5u);  // unset: untouched
  }
  // 0 would deadlock a bounded queue and 65 is past the documented cap —
  // both are range errors, not schedule choices.
  for (const char* v : {"0", "65", "4x", "abc", "-2", " 4", "0x4"}) {
    ScopedEnv d("ISSRTL_PREFETCH_DEPTH", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, OptionsFromEnvValidatesFailSiteEagerly) {
  {
    ScopedEnv f("ISSRTL_FAIL_SITE", "3:once,7");
    EXPECT_EQ(options_from_env().fail_sites, "3:once,7");
  }
  {
    ScopedEnv f("ISSRTL_FAIL_SITE", "3:once:classify,7:step");
    EXPECT_EQ(options_from_env().fail_sites, "3:once:classify,7:step");
  }
  // A typo'd hook must fail at option parse time, by variable name — not
  // silently inject (or fail to inject) faults mid-campaign.
  for (const char* v : {"a", "3:twice", "3,", ",3", "3::once", "-1", ":once",
                        "3:bogus", "3:arm:step", "3:classify:"}) {
    ScopedEnv f("ISSRTL_FAIL_SITE", v);
    EXPECT_THROW(options_from_env(), std::invalid_argument) << v;
  }
}

TEST(Engine, ParseFailSitesSpec) {
  EXPECT_TRUE(parse_fail_sites("").empty());
  const FailSiteSpec s = parse_fail_sites("3:once,7");
  ASSERT_NE(s.find(3), nullptr);
  EXPECT_TRUE(s.find(3)->once);
  EXPECT_EQ(s.find(3)->stage, FailStage::kArm);  // default stage
  ASSERT_NE(s.find(7), nullptr);
  EXPECT_FALSE(s.find(7)->once);
  EXPECT_EQ(s.find(5), nullptr);
}

TEST(Engine, ParseFailSitesStageTags) {
  const FailSiteSpec s =
      parse_fail_sites("1:restore,2:arm,3:step,4:classify:once,5");
  ASSERT_NE(s.find(1), nullptr);
  EXPECT_EQ(s.find(1)->stage, FailStage::kRestore);
  ASSERT_NE(s.find(2), nullptr);
  EXPECT_EQ(s.find(2)->stage, FailStage::kArm);
  ASSERT_NE(s.find(3), nullptr);
  EXPECT_EQ(s.find(3)->stage, FailStage::kStep);
  ASSERT_NE(s.find(4), nullptr);
  EXPECT_EQ(s.find(4)->stage, FailStage::kClassify);
  EXPECT_TRUE(s.find(4)->once);  // tags compose in any order
  ASSERT_NE(s.find(5), nullptr);
  EXPECT_EQ(s.find(5)->stage, FailStage::kArm);
  // At most one stage tag per site: a second one is a conflict, not a
  // last-wins override.
  EXPECT_THROW(parse_fail_sites("3:restore:classify"), std::invalid_argument);
}

TEST(Engine, AccumulatorMergeMatchesSequential) {
  OutcomeAccumulator all;
  OutcomeAccumulator a, b;
  all.add(fault::Outcome::kFailure, 10);
  all.add(fault::Outcome::kHang, 0);
  all.add(fault::Outcome::kFailure, 30);
  all.add(fault::Outcome::kSilent, 0);
  a.add(fault::Outcome::kFailure, 10);
  a.add(fault::Outcome::kHang, 0);
  b.add(fault::Outcome::kFailure, 30);
  b.add(fault::Outcome::kSilent, 0);
  a.merge(b);
  EXPECT_EQ(a.runs, all.runs);
  EXPECT_EQ(a.failures, all.failures);
  EXPECT_EQ(a.hangs, all.hangs);
  EXPECT_EQ(a.max_latency, all.max_latency);
  EXPECT_DOUBLE_EQ(a.mean_latency(), all.mean_latency());
  const fault::CampaignStats s = a.to_stats(FaultModel::kStuckAt1);
  EXPECT_EQ(s.failures, 2u);
  EXPECT_EQ(s.hangs, 1u);
  EXPECT_DOUBLE_EQ(s.pf(), 3.0 / 4.0);
}

}  // namespace
}  // namespace issrtl::engine

// RTL core correctness: the pipelined Leon3-like core must be architecturally
// equivalent to the functional emulator — same halt reason, same final
// architectural state, same off-core write sequence — on directed programs,
// on every workload, and on randomized instruction mixes (cosimulation
// property test).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "iss/emulator.hpp"
#include "rtlcore/core.hpp"
#include "workloads/workload.hpp"

namespace issrtl::rtlcore {
namespace {

using isa::Assembler;
using isa::Program;
using isa::Reg;
using iss::Emulator;
using iss::HaltReason;

struct CosimResult {
  HaltReason iss_halt, rtl_halt;
  iss::ArchState iss_state, rtl_state;
  TraceDivergence write_diff;
  u64 iss_instret = 0, rtl_instret = 0;
  u64 rtl_cycles = 0;
};

CosimResult cosim(const Program& prog, u64 max_steps = 2'000'000) {
  CosimResult r;
  Memory iss_mem;
  Emulator emu(iss_mem);
  emu.load(prog);
  r.iss_halt = emu.run(max_steps);
  r.iss_state = emu.state();
  r.iss_instret = emu.instret();

  Memory rtl_mem;
  Leon3Core core(rtl_mem);
  core.load(prog);
  r.rtl_halt = core.run(max_steps * 8);
  r.rtl_state = core.arch_state();
  r.rtl_instret = core.instret();
  r.rtl_cycles = core.cycles();

  r.write_diff = core.offcore().compare_writes(emu.offcore());
  return r;
}

void expect_equivalent(const CosimResult& r, bool check_pc = true) {
  EXPECT_EQ(r.iss_halt, r.rtl_halt);
  EXPECT_FALSE(r.write_diff.diverged) << r.write_diff.detail;
  EXPECT_EQ(r.iss_state.regs, r.rtl_state.regs);
  EXPECT_EQ(r.iss_state.cwp, r.rtl_state.cwp);
  EXPECT_EQ(r.iss_state.icc.nzvc, r.rtl_state.icc.nzvc);
  EXPECT_EQ(r.iss_state.y, r.rtl_state.y);
  if (check_pc && r.iss_halt == HaltReason::kHalted) {
    EXPECT_EQ(r.iss_state.pc, r.rtl_state.pc);
  }
}

Program assemble(void (*body)(Assembler&)) {
  Assembler a("t");
  body(a);
  return a.finalize();
}

// ---- directed cosim tests -------------------------------------------------------

TEST(RtlCore, HaltsOnTa0) {
  const auto r = cosim(assemble([](Assembler& a) { a.halt(); }));
  EXPECT_EQ(r.rtl_halt, HaltReason::kHalted);
  expect_equivalent(r);
}

TEST(RtlCore, StraightLineArithmetic) {
  const auto r = cosim(assemble([](Assembler& a) {
    a.mov(Reg::o0, 40);
    a.add(Reg::o0, Reg::o0, 2);
    a.sub(Reg::o1, Reg::o0, 10);
    a.sll(Reg::o2, Reg::o0, 3);
    a.xor_(Reg::o3, Reg::o1, Reg::o2);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(8), 42u);
}

TEST(RtlCore, BackToBackDependencies) {
  // Exercises the scoreboard: every instruction depends on the previous one.
  const auto r = cosim(assemble([](Assembler& a) {
    a.mov(Reg::o0, 1);
    for (int i = 0; i < 20; ++i) a.add(Reg::o0, Reg::o0, Reg::o0);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(8), 1u << 20);
}

TEST(RtlCore, FlagsAndConditionalBranches) {
  const auto r = cosim(assemble([](Assembler& a) {
    auto less = a.label();
    a.mov(Reg::o0, 3);
    a.cmp(Reg::o0, 5);
    a.bl(less);
    a.mov(Reg::o1, 111);   // delay slot
    a.mov(Reg::o2, 222);   // skipped
    a.bind(less);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(9), 111u);
  EXPECT_EQ(r.rtl_state.get_reg(10), 0u);
}

TEST(RtlCore, LoopWithTakenBackwardBranch) {
  const auto r = cosim(assemble([](Assembler& a) {
    a.mov(Reg::o0, 0);
    a.mov(Reg::o1, 50);
    auto loop = a.here();
    a.add(Reg::o0, Reg::o0, Reg::o1);
    a.subcc(Reg::o1, Reg::o1, 1);
    a.bne(loop);
    a.nop();
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(8), 50u * 51 / 2);
}

TEST(RtlCore, AnnulledDelaySlots) {
  const auto r = cosim(assemble([](Assembler& a) {
    auto t1 = a.label(), t2 = a.label();
    a.cmp(Reg::g0, 0);
    a.bne(t1, true);       // not taken, annul: delay slot squashed
    a.mov(Reg::o0, 99);
    a.bind(t1);
    a.be(t2, true);        // taken with annul: delay slot executes
    a.mov(Reg::o1, 55);
    a.mov(Reg::o1, 77);    // skipped
    a.bind(t2);
    a.ba(t2, true);        // ba,a: delay slot squashed... careful: infinite
    a.nop();
    a.halt();
  }));
  // ba,a to its own label loops forever — both must hit the step limit the
  // same way. (This also exercises watchdog parity.)
  EXPECT_EQ(r.iss_halt, HaltReason::kStepLimit);
  EXPECT_EQ(r.rtl_halt, HaltReason::kStepLimit);
}

TEST(RtlCore, BaAnnulSkipsDelaySlot) {
  const auto r = cosim(assemble([](Assembler& a) {
    auto t = a.label();
    a.ba(t, true);
    a.mov(Reg::o0, 99);    // must never execute
    a.bind(t);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(8), 0u);
}

TEST(RtlCore, CallRetlAndWindows) {
  const auto r = cosim(assemble([](Assembler& a) {
    auto fn = a.label();
    a.mov(Reg::o0, 5);
    a.call(fn);
    a.nop();
    a.add(Reg::o2, Reg::o0, 100);
    a.halt();
    a.bind(fn);
    a.save(Reg::o6, Reg::o6, -96);
    a.add(Reg::l0, Reg::i0, 37);
    a.ret();
    a.restore(Reg::o0, Reg::l0, Reg::g0);
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(10), 142u);
}

TEST(RtlCore, LoadStoreAllWidths) {
  const auto r = cosim(assemble([](Assembler& a) {
    const u32 buf = a.data_zero(32);
    a.set32(Reg::l0, buf);
    a.set32(Reg::o0, 0x11223344);
    a.st(Reg::o0, Reg::l0, 0);
    a.ld(Reg::o1, Reg::l0, 0);
    a.ldub(Reg::o2, Reg::l0, 1);
    a.ldsb(Reg::o3, Reg::l0, 0);
    a.lduh(Reg::o4, Reg::l0, 2);
    a.ldsh(Reg::o5, Reg::l0, 0);
    a.sth(Reg::o0, Reg::l0, 8);
    a.stb(Reg::o0, Reg::l0, 12);
    a.set32(Reg::o0, 0xAABBCCDD);
    a.set32(Reg::o1, 0x55667788);
    a.std_(Reg::o0, Reg::l0, 16);
    a.ldd(Reg::o2, Reg::l0, 16);
    a.ldstub(Reg::o4, Reg::l0, 24);
    a.set32(Reg::o5, 0x12341234);
    a.swap(Reg::o5, Reg::l0, 28);
    a.halt();
  }));
  expect_equivalent(r);
}

TEST(RtlCore, MulDivAndY) {
  const auto r = cosim(assemble([](Assembler& a) {
    a.set32(Reg::o0, 0x12345);
    a.set32(Reg::o1, 0x6789);
    a.umul(Reg::o2, Reg::o0, Reg::o1);
    a.rdy(Reg::o3);
    a.smul(Reg::o4, Reg::o0, Reg::o1);
    a.wry(Reg::g0, 0);
    a.udiv(Reg::o5, Reg::o0, Reg::o1);
    a.set32(Reg::l1, 0xFFFF9C00);  // negative
    a.wry(Reg::l2, -1);            // hmm: l2 is zero, y = 0 ^ -1
    a.sdiv(Reg::l0, Reg::l1, Reg::o1);
    a.mulscc(Reg::l3, Reg::o0, Reg::o1);
    a.halt();
  }));
  expect_equivalent(r);
}

TEST(RtlCore, DivisionByZeroTrap) {
  const auto r = cosim(assemble([](Assembler& a) {
    a.mov(Reg::o0, 5);
    a.udiv(Reg::o1, Reg::o0, Reg::g0);
    a.halt();
  }));
  EXPECT_EQ(r.rtl_halt, HaltReason::kDivisionByZero);
  expect_equivalent(r, false);
}

TEST(RtlCore, MisalignedAccessTrap) {
  const auto r = cosim(assemble([](Assembler& a) {
    const u32 buf = a.data_zero(8);
    a.set32(Reg::l0, buf);
    a.ld(Reg::o0, Reg::l0, 2);
    a.halt();
  }));
  EXPECT_EQ(r.rtl_halt, HaltReason::kMisalignedAccess);
}

TEST(RtlCore, IllegalInstructionTrap) {
  const auto r = cosim(assemble([](Assembler& a) {
    a.emit(0xFFFFFFFF);
    a.halt();
  }));
  EXPECT_EQ(r.rtl_halt, HaltReason::kIllegalInstruction);
}

TEST(RtlCore, SoftTrapCodePropagates) {
  Memory mem;
  Leon3Core core(mem);
  Assembler a("t");
  a.ta(7);
  core.load(a.finalize());
  EXPECT_EQ(core.run(), HaltReason::kTrap);
  EXPECT_EQ(core.trap_code(), 7);
}

TEST(RtlCore, YoungerStoreAfterTrapDoesNotCommit) {
  // A store fetched after `ta 0` must never reach the bus.
  const auto r = cosim(assemble([](Assembler& a) {
    const u32 buf = a.data_zero(8);
    a.set32(Reg::l0, buf);
    a.mov(Reg::o0, 1);
    a.st(Reg::o0, Reg::l0, 0);
    a.halt();
    a.st(Reg::o0, Reg::l0, 4);  // must not execute
  }));
  expect_equivalent(r);
}

TEST(RtlCore, WindowOverflowTrap) {
  const auto r = cosim(assemble([](Assembler& a) {
    for (unsigned i = 0; i < isa::kNumWindows; ++i)
      a.save(Reg::o6, Reg::o6, -96);
    a.halt();
  }));
  EXPECT_EQ(r.rtl_halt, HaltReason::kWindowOverflow);
  EXPECT_EQ(r.iss_halt, r.rtl_halt);
}

TEST(RtlCore, StoreDataHazard) {
  // Store data register written by the immediately preceding instruction.
  const auto r = cosim(assemble([](Assembler& a) {
    const u32 buf = a.data_zero(8);
    a.set32(Reg::l0, buf);
    a.mov(Reg::o0, 0x55);
    a.st(Reg::o0, Reg::l0, 0);
    a.ld(Reg::o1, Reg::l0, 0);
    a.add(Reg::o2, Reg::o1, 1);   // load-use
    a.st(Reg::o2, Reg::l0, 4);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(10), 0x56u);
}

TEST(RtlCore, CtiResolutionDuringIcacheMiss) {
  // Branch target far away forces an I-cache miss right after redirect.
  const auto r = cosim(assemble([](Assembler& a) {
    auto far = a.label();
    a.mov(Reg::o0, 1);
    a.ba(far);
    a.mov(Reg::o1, 2);
    for (int i = 0; i < 600; ++i) a.mov(Reg::o2, 3);  // pushes target far away
    a.bind(far);
    a.add(Reg::o3, Reg::o0, Reg::o1);
    a.halt();
  }));
  expect_equivalent(r);
  EXPECT_EQ(r.rtl_state.get_reg(11), 3u);
}

TEST(RtlCore, PipelineOverlapIsReal) {
  // CPI must be well below the 7x a completely serialised design would give.
  Assembler a("t");
  a.mov(Reg::o0, 0);
  a.mov(Reg::o1, 0);
  for (int i = 0; i < 200; ++i) {
    a.add(Reg::o0, Reg::o0, 1);   // independent streams
    a.add(Reg::o1, Reg::o1, 2);
    a.xor_(Reg::o2, Reg::g0, 3);
    a.or_(Reg::o3, Reg::g0, 4);
  }
  a.halt();
  Memory mem;
  Leon3Core core(mem);
  core.load(a.finalize());
  ASSERT_EQ(core.run(), HaltReason::kHalted);
  const double cpi =
      static_cast<double>(core.cycles()) / static_cast<double>(core.instret());
  EXPECT_LT(cpi, 2.5);
  EXPECT_GE(cpi, 1.0);
}

// ---- full workloads ---------------------------------------------------------------

class WorkloadCosim : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadCosim, RtlMatchesIss) {
  // Keep runtimes reasonable: single iteration.
  const auto prog =
      workloads::build(GetParam(), {.iterations = 1, .data_seed = 3});
  const auto r = cosim(prog, 10'000'000);
  EXPECT_EQ(r.iss_halt, HaltReason::kHalted);
  expect_equivalent(r);
  EXPECT_EQ(r.iss_instret, r.rtl_instret);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCosim,
    ::testing::Values("puwmod", "canrdr", "ttsprk", "rspeed", "membench",
                      "intbench", "a2time", "tblook", "basefp", "bitmnp",
                      "a2time_x", "rspeed_x"),
    [](const auto& info) { return info.param; });

// ---- randomized cosimulation property ------------------------------------------------

/// Generate a random but well-formed straight-line program: ALU ops over
/// initialised registers, loads/stores into a private buffer, guarded
/// branches forward, ending in a halt.
Program random_program(u64 seed) {
  Xoshiro256 rng(seed);
  Assembler a("rand");
  const u32 buf = a.data_zero(256);
  a.set32(Reg::l7, buf);
  // Seed a few registers with random values.
  const Reg pool[] = {Reg::o0, Reg::o1, Reg::o2, Reg::o3, Reg::o4,
                      Reg::l0, Reg::l1, Reg::l2, Reg::l3, Reg::l4};
  for (const Reg r : pool) a.set32(r, rng.next_u32());

  auto rnd_reg = [&] { return pool[rng.next_below(std::size(pool))]; };

  const int n = 60 + static_cast<int>(rng.next_below(120));
  for (int i = 0; i < n; ++i) {
    switch (rng.next_below(12)) {
      case 0: a.add(rnd_reg(), rnd_reg(), rnd_reg()); break;
      case 1: a.subcc(rnd_reg(), rnd_reg(), rnd_reg()); break;
      case 2: a.xor_(rnd_reg(), rnd_reg(),
                     static_cast<i32>(rng.next_below(8192)) - 4096); break;
      case 3: a.and_(rnd_reg(), rnd_reg(), rnd_reg()); break;
      case 4: a.sll(rnd_reg(), rnd_reg(),
                    static_cast<i32>(rng.next_below(32))); break;
      case 5: a.sra(rnd_reg(), rnd_reg(),
                    static_cast<i32>(rng.next_below(32))); break;
      case 6: a.umul(rnd_reg(), rnd_reg(), rnd_reg()); break;
      case 7: a.addxcc(rnd_reg(), rnd_reg(), rnd_reg()); break;
      case 8:
        a.st(rnd_reg(), Reg::l7, static_cast<i32>(rng.next_below(60)) * 4);
        break;
      case 9:
        a.ld(rnd_reg(), Reg::l7, static_cast<i32>(rng.next_below(60)) * 4);
        break;
      case 10: {
        // Guarded short forward branch (both paths converge).
        auto t = a.label();
        a.cmp(rnd_reg(), rnd_reg());
        const u8 cond = 1 + static_cast<u8>(rng.next_below(15));
        a.bicc(isa::branch_from_cond(cond), t, rng.next_below(2) != 0);
        a.add(rnd_reg(), rnd_reg(), 1);  // delay slot (maybe annulled)
        a.bind(t);
        break;
      }
      default: a.ldub(rnd_reg(), Reg::l7,
                      static_cast<i32>(rng.next_below(250))); break;
    }
  }
  // Report some state so differences show up off-core.
  for (unsigned i = 0; i < std::size(pool); ++i) {
    a.st(pool[i], Reg::l7, static_cast<i32>(240));
  }
  a.halt();
  return a.finalize();
}

class RandomCosim : public ::testing::TestWithParam<int> {};

TEST_P(RandomCosim, RtlMatchesIssOnRandomProgram) {
  const auto prog = random_program(0xC0FFEE + GetParam() * 7919);
  const auto r = cosim(prog);
  EXPECT_EQ(r.iss_halt, HaltReason::kHalted) << "seed " << GetParam();
  expect_equivalent(r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosim, ::testing::Range(0, 25));

}  // namespace
}  // namespace issrtl::rtlcore

// Tests for the analysis module: statistics, diversity reports, area model
// and the Pf predictor (Fig. 7 / Eq. 1 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "core/area.hpp"
#include "core/avf.hpp"
#include "core/diversity.hpp"
#include "core/predict.hpp"
#include "core/stats.hpp"
#include "isa/assembler.hpp"
#include "rtlcore/core.hpp"
#include "workloads/workload.hpp"

namespace issrtl::core {
namespace {

using isa::Reg;

// ---- stats -----------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  const double xs[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const double yneg[] = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const double xs[] = {1, 1, 1};
  const double ys[] = {1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  const double xs[] = {0, 1, 2, 3, 4};
  const double ys[] = {1, 3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitR2ReflectsNoise) {
  const double xs[] = {0, 1, 2, 3, 4, 5};
  const double ys[] = {0.0, 1.4, 1.6, 3.5, 3.4, 5.2};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_GT(f.r2, 0.8);
  EXPECT_LT(f.r2, 1.0);
}

TEST(Stats, LogFitRecoversPaperStyleCurve) {
  // Synthesise points from the paper's own Fig. 7 equation:
  // Pf = 0.0838*ln(D) - 0.0191.
  std::vector<double> xs, ys;
  for (const double d : {8.0, 11.0, 18.0, 20.0, 47.0, 48.0}) {
    xs.push_back(d);
    ys.push_back(0.0838 * std::log(d) - 0.0191);
  }
  const LogFit f = log_fit(xs, ys);
  EXPECT_NEAR(f.a, 0.0838, 1e-9);
  EXPECT_NEAR(f.b, -0.0191, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
  EXPECT_NEAR(f.at(30.0), 0.0838 * std::log(30.0) - 0.0191, 1e-9);
}

TEST(Stats, LogFitRejectsNonPositiveX) {
  const double xs[] = {0, 1};
  const double ys[] = {0, 1};
  EXPECT_THROW(log_fit(xs, ys), std::invalid_argument);
}

TEST(Stats, FitNeedsTwoPoints) {
  const double xs[] = {1};
  const double ys[] = {1};
  EXPECT_THROW(linear_fit(xs, ys), std::invalid_argument);
}

// ---- diversity ---------------------------------------------------------------------

TEST(Diversity, MatchesTraceForWorkload) {
  const auto prog = workloads::build("rspeed");
  const DiversityReport r = analyze_diversity(prog);
  EXPECT_EQ(r.workload, "rspeed");
  EXPECT_GE(r.diversity, 45u);
  EXPECT_GT(r.total_instructions, r.memory_instructions);
  EXPECT_GE(r.total_instructions, r.iu_instructions);
  // Fetch and decode see every instruction type.
  EXPECT_EQ(r.dm(isa::FuncUnit::Fetch), r.diversity);
  EXPECT_EQ(r.dm(isa::FuncUnit::Decode), r.diversity);
  // Subsets: no unit can exceed the total diversity.
  for (std::size_t u = 0; u < isa::kNumFuncUnits; ++u) {
    EXPECT_LE(r.unit_diversity[u], r.diversity);
  }
}

TEST(Diversity, SyntheticVsAutomotiveUnitFootprint) {
  const auto synth = analyze_diversity(workloads::build("intbench"));
  const auto autom = analyze_diversity(workloads::build("ttsprk"));
  EXPECT_LT(synth.diversity, autom.diversity);
  // intbench barely touches the D-cache.
  EXPECT_LT(synth.dm(isa::FuncUnit::DCache), 3u);
  EXPECT_GT(autom.dm(isa::FuncUnit::DCache), 8u);
}

TEST(Diversity, ThrowsOnNonHaltingProgram) {
  isa::Assembler a("loop");
  auto l = a.here();
  a.ba(l);
  a.nop();
  EXPECT_THROW(analyze_diversity(a.finalize(), 1000), std::runtime_error);
}

// ---- area model ---------------------------------------------------------------------

TEST(Area, AlphaSumsToOne) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  const AreaModel m = build_area_model(core.sim());
  double sum = 0.0;
  for (const double a : m.alpha) sum += a;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(m.total_bits, core.sim().injectable_bits());
}

TEST(Area, CachesDominateBitCount) {
  // 2x 1KiB data arrays dwarf the pipeline latches — the heterogeneity α_m
  // exists to capture.
  Memory mem;
  rtlcore::Leon3Core core(mem);
  const AreaModel m = build_area_model(core.sim());
  EXPECT_GT(m.alpha_for(isa::FuncUnit::ICache) +
                m.alpha_for(isa::FuncUnit::DCache),
            0.4);
  EXPECT_GT(m.alpha_for(isa::FuncUnit::RegFile), 0.05);
}

TEST(Area, UnitPrefixRestrictsModel) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  const AreaModel iu = build_area_model(core.sim(), "iu");
  EXPECT_EQ(iu.bits[static_cast<std::size_t>(isa::FuncUnit::ICache)], 0u);
  EXPECT_GT(iu.bits[static_cast<std::size_t>(isa::FuncUnit::Alu)], 0u);
  EXPECT_EQ(iu.total_bits, core.sim().injectable_bits("iu"));
}

TEST(Area, EveryRtlUnitMapsSomewhere) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  for (const auto id : core.sim().nodes_in_unit("")) {
    const auto fu = func_unit_for_rtl_unit(core.sim().unit(id));
    EXPECT_LT(static_cast<std::size_t>(fu), isa::kNumFuncUnits);
  }
}

// ---- predictor -----------------------------------------------------------------------

std::vector<CalibrationSample> synthetic_samples() {
  // Diversity/Pf pairs following a known log law with mild noise.
  std::vector<CalibrationSample> out;
  const double divs[] = {8, 11, 18, 20, 46, 47};
  const double noise[] = {0.004, -0.003, 0.002, -0.004, 0.003, -0.002};
  for (int i = 0; i < 6; ++i) {
    CalibrationSample s;
    s.diversity.diversity = static_cast<unsigned>(divs[i]);
    for (auto& dm : s.diversity.unit_diversity) {
      dm = static_cast<unsigned>(divs[i]);
    }
    s.total_pf = 0.08 * std::log(divs[i]) - 0.01 + noise[i];
    out.push_back(s);
  }
  return out;
}

TEST(Predictor, GlobalModelInterpolates) {
  PfPredictor p;
  Memory mem;
  rtlcore::Leon3Core core(mem);
  p.calibrate(synthetic_samples(), build_area_model(core.sim()));
  EXPECT_TRUE(p.calibrated());
  EXPECT_GT(p.global_fit().r2, 0.95);
  const double at30 = p.predict_global(30);
  EXPECT_NEAR(at30, 0.08 * std::log(30.0) - 0.01, 0.02);
  // Monotone in diversity.
  EXPECT_LT(p.predict_global(10), p.predict_global(40));
}

TEST(Predictor, PredictionsClampedToProbability) {
  PfPredictor p;
  Memory mem;
  rtlcore::Leon3Core core(mem);
  p.calibrate(synthetic_samples(), build_area_model(core.sim()));
  EXPECT_GE(p.predict_global(1), 0.0);
  EXPECT_LE(p.predict_global(10000), 1.0);
}

TEST(Predictor, UncalibratedThrows) {
  PfPredictor p;
  EXPECT_THROW(p.predict_global(10), std::logic_error);
  DiversityReport d;
  EXPECT_THROW(p.predict_eq1(d), std::logic_error);
}

TEST(Predictor, NeedsTwoSamples) {
  PfPredictor p;
  Memory mem;
  rtlcore::Leon3Core core(mem);
  std::vector<CalibrationSample> one(1);
  one[0].diversity.diversity = 10;
  EXPECT_THROW(p.calibrate(one, build_area_model(core.sim())),
               std::invalid_argument);
}

TEST(Predictor, Eq1UsesUnitPf) {
  PfPredictor p;
  Memory mem;
  rtlcore::Leon3Core core(mem);
  auto samples = synthetic_samples();
  // Attach synthetic per-unit observations consistent with the global law.
  for (auto& s : samples) {
    std::vector<UnitObservation> obs;
    const int fails = static_cast<int>(100 * s.total_pf);
    for (int i = 0; i < 100; ++i) {
      obs.emplace_back("iu.alu", i < fails);
      obs.emplace_back("cmem.dcache", i < fails);
      obs.emplace_back("iu.regfile", i < fails);
    }
    s.unit_pf = UnitPf::from_observations(obs);
  }
  p.calibrate(samples, build_area_model(core.sim()));
  DiversityReport lo, hi;
  lo.diversity = 10;
  hi.diversity = 45;
  for (auto& dm : lo.unit_diversity) dm = 10;
  for (auto& dm : hi.unit_diversity) dm = 45;
  EXPECT_LT(p.predict_eq1(lo), p.predict_eq1(hi));
  EXPECT_GE(p.predict_eq1(lo), 0.0);
  EXPECT_LE(p.predict_eq1(hi), 1.0);
  // Unweighted ablation also monotone but generally different.
  EXPECT_LT(p.predict_eq1_unweighted(lo), p.predict_eq1_unweighted(hi));
}

TEST(Predictor, UnexercisedUnitContributesZero) {
  PfPredictor p;
  Memory mem;
  rtlcore::Leon3Core core(mem);
  auto samples = synthetic_samples();
  p.calibrate(samples, build_area_model(core.sim()));
  DiversityReport d;
  d.diversity = 20;
  // All-zero unit diversity: nothing exercised, Eq. 1 predicts ~0.
  EXPECT_EQ(p.predict_eq1(d), 0.0);
}

TEST(Predictor, LeaveOneOutErrorIsSmallOnLawfulData) {
  const double err = loo_mean_abs_error(synthetic_samples());
  EXPECT_LT(err, 0.03);
  std::vector<CalibrationSample> two(2);
  EXPECT_THROW(loo_mean_abs_error(two), std::invalid_argument);
}

TEST(UnitPfAggregation, CountsPerFunctionalUnit) {
  std::vector<UnitObservation> obs = {
      {"iu.alu", true},  {"iu.alu", false},   {"iu.alu", true},
      {"cmem.dcache", false}, {"cmem.dcache", false},
  };
  const UnitPf u = UnitPf::from_observations(obs);
  const auto alu = static_cast<std::size_t>(isa::FuncUnit::Alu);
  const auto dc = static_cast<std::size_t>(isa::FuncUnit::DCache);
  EXPECT_EQ(u.runs[alu], 3u);
  EXPECT_NEAR(u.pf[alu], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(u.runs[dc], 2u);
  EXPECT_EQ(u.pf[dc], 0.0);
}


// ---- AVF (related work [14]) ---------------------------------------------------

TEST(Avf, BoundsAndSanity) {
  const auto r = analyze_register_avf(workloads::build("rspeed", {.iterations = 1}));
  EXPECT_GT(r.instructions, 1000u);
  EXPECT_GT(r.regfile_avf, 0.0);
  EXPECT_LT(r.regfile_avf, 1.0);
  for (const double v : r.per_reg) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(r.per_reg[0], 0.0);  // %g0 never vulnerable
}

TEST(Avf, DeadValuesAreNotAce) {
  // o0 written then immediately overwritten: first def un-ACE; o1 written,
  // read much later: long ACE interval.
  isa::Assembler a("avf");
  const u32 out = a.data_zero(8);
  a.set32(Reg::l0, out);
  a.mov(Reg::o1, 7);                       // live until the store below
  a.mov(Reg::o0, 1);                       // dead (overwritten next)
  a.mov(Reg::o0, 2);
  for (int i = 0; i < 50; ++i) a.add(Reg::l1, Reg::l1, 1);
  a.st(Reg::o1, Reg::l0, 0);               // o1 read here
  a.halt();
  const auto r = analyze_register_avf(a.finalize());
  const unsigned o0 = isa::phys_reg_index(8, 0);
  const unsigned o1 = isa::phys_reg_index(9, 0);
  EXPECT_GT(r.per_reg[o1], r.per_reg[o0]);
  EXPECT_GT(r.per_reg[o1], 0.5);           // live across the filler loop
}

TEST(Avf, HotRegisterIsHighAvf) {
  // A loop counter read every iteration is almost always ACE.
  isa::Assembler a("avf2");
  a.set32(Reg::o2, 200);
  auto loop = a.here();
  a.subcc(Reg::o2, Reg::o2, 1);
  a.bne(loop);
  a.nop();
  a.halt();
  const auto r = analyze_register_avf(a.finalize());
  EXPECT_GT(r.per_reg[isa::phys_reg_index(10, 0)], 0.9);
}

TEST(Avf, IntbenchHasHigherRegfileAvfThanMembench) {
  // The ALU-bound synthetic keeps values live in registers; the streaming
  // benchmark's values die quickly into memory.
  const auto ib = analyze_register_avf(workloads::build("intbench"));
  const auto mb = analyze_register_avf(workloads::build("membench"));
  EXPECT_GT(ib.regfile_avf, 0.0);
  EXPECT_GT(mb.regfile_avf, 0.0);
}

TEST(Avf, ThrowsOnNonHalting) {
  isa::Assembler a("spin");
  auto l = a.here();
  a.ba(l);
  a.nop();
  EXPECT_THROW(analyze_register_avf(a.finalize(), 500), std::runtime_error);
}

}  // namespace
}  // namespace issrtl::core

// Text assembler tests: directives, operand forms, synthetic instructions,
// error reporting, and a disassemble/reassemble round-trip property.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/asm_parser.hpp"
#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "iss/emulator.hpp"

namespace issrtl::isa {
namespace {

TEST(AsmParser, MinimalProgramRuns) {
  const Program p = assemble_text(R"(
    .data
    buf: .space 64
    .text
    start:
      set buf, %l0
      mov 10, %o1
      clr %o0
    loop:
      add %o0, %o1, %o0
      subcc %o1, 1, %o1
      bne loop
      nop
      st %o0, [%l0 + 4]
      ta 0
  )");
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(p);
  EXPECT_EQ(emu.run(), iss::HaltReason::kHalted);
  EXPECT_EQ(mem.load_u32(p.symbol("buf") + 4), 55u);
}

TEST(AsmParser, CommentsAndBlankLines) {
  const Program p = assemble_text(R"(
    ! full line comment
    # another
      nop            ! trailing comment
      ta 0           # trailing comment
  )");
  EXPECT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0], encode_nop());
}

TEST(AsmParser, RegisterAliases) {
  const Program p = assemble_text(R"(
    add %sp, 8, %fp
    add %r1, %r2, %r3
    ta 0
  )");
  const DecodedInst d0 = decode(p.code[0]);
  EXPECT_EQ(d0.rs1, reg_num(kSp));
  EXPECT_EQ(d0.rd, reg_num(kFp));
  const DecodedInst d1 = decode(p.code[1]);
  EXPECT_EQ(d1.rs1, 1);
  EXPECT_EQ(d1.rs2, 2);
  EXPECT_EQ(d1.rd, 3);
}

TEST(AsmParser, MemoryOperandForms) {
  const Program p = assemble_text(R"(
    ld [%l0], %o0
    ld [%l0 + 8], %o1
    ld [%l0 - 4], %o2
    ld [%l0 + %l1], %o3
    st %o0, [%l2 + 12]
    ldd [%l0], %o4
    swap [%l0 + 4], %o0
    ta 0
  )");
  EXPECT_EQ(decode(p.code[0]).simm13, 0);
  EXPECT_EQ(decode(p.code[1]).simm13, 8);
  EXPECT_EQ(decode(p.code[2]).simm13, -4);
  EXPECT_FALSE(decode(p.code[3]).uses_imm);
  EXPECT_EQ(decode(p.code[3]).rs2, reg_num(Reg::l1));
  EXPECT_EQ(decode(p.code[4]).opcode, Opcode::kST);
  EXPECT_EQ(decode(p.code[5]).opcode, Opcode::kLDD);
  EXPECT_EQ(decode(p.code[6]).opcode, Opcode::kSWAP);
}

TEST(AsmParser, HiLoOperators) {
  const Program p = assemble_text(R"(
    sethi %hi(0x40123456), %l0
    or %l0, %lo(0x40123456), %l0
    ta 0
  )");
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(p);
  emu.run();
  EXPECT_EQ(emu.state().get_reg(reg_num(Reg::l0)), 0x40123456u);
}

TEST(AsmParser, EquConstants) {
  const Program p = assemble_text(R"(
    .equ kCount, 42
    mov kCount, %o0
    ta 0
  )");
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(p);
  emu.run();
  EXPECT_EQ(emu.state().get_reg(8), 42u);
}

TEST(AsmParser, DataDirectives) {
  const Program p = assemble_text(R"(
    .data
    words: .word 0x11223344, 0x55667788
    halfs: .half 0x1234
    bytes: .byte 1, 2, 3
    gap:   .space 5
    .align 4
    tail:  .word 0xCAFEBABE
  )");
  Memory mem;
  p.load_into(mem);
  EXPECT_EQ(mem.load_u32(p.symbol("words")), 0x11223344u);
  EXPECT_EQ(mem.load_u32(p.symbol("words") + 4), 0x55667788u);
  EXPECT_EQ(mem.load_u16(p.symbol("halfs")), 0x1234u);
  EXPECT_EQ(mem.load_u8(p.symbol("bytes") + 2), 3u);
  EXPECT_EQ(p.symbol("tail") % 4, 0u);
  EXPECT_EQ(mem.load_u32(p.symbol("tail")), 0xCAFEBABEu);
}

TEST(AsmParser, BranchAnnulSuffix) {
  const Program p = assemble_text(R"(
    t:
      bne,a t
      nop
      ba t
      nop
      ta 0
  )");
  EXPECT_TRUE(decode(p.code[0]).annul);
  EXPECT_EQ(decode(p.code[0]).opcode, Opcode::kBNE);
  EXPECT_FALSE(decode(p.code[2]).annul);
}

TEST(AsmParser, ForwardReferences) {
  const Program p = assemble_text(R"(
      ba end
      nop
      nop
    end:
      ta 0
  )");
  const DecodedInst d = decode(p.code[0]);
  EXPECT_EQ(p.code_base + static_cast<u32>(d.disp), p.code_base + 12);
}

TEST(AsmParser, CallAndReturn) {
  const Program p = assemble_text(R"(
      mov 5, %o0
      call fn
      nop
      ta 0
    fn:
      add %o0, 1, %o0
      retl
      nop
  )");
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(p);
  EXPECT_EQ(emu.run(), iss::HaltReason::kHalted);
  EXPECT_EQ(emu.state().get_reg(8), 6u);
}

TEST(AsmParser, SpecialRegisters) {
  const Program p = assemble_text(R"(
    mov 7, %o0
    wr %o0, 0, %y
    rd %y, %o1
    ta 0
  )");
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(p);
  emu.run();
  EXPECT_EQ(emu.state().get_reg(9), 7u);
}

TEST(AsmParser, ErrorsCarryLineNumbers) {
  try {
    assemble_text("nop\nbogus %o0, %o1\n");
    FAIL() << "expected AsmParseError";
  } catch (const AsmParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
  }
}

TEST(AsmParser, ErrorCases) {
  EXPECT_THROW(assemble_text("ld %o0, %o1"), AsmParseError);       // not a mem op
  EXPECT_THROW(assemble_text("add %o0, %o1"), AsmParseError);      // arity
  EXPECT_THROW(assemble_text("ba nowhere"), AsmParseError);        // undefined
  EXPECT_THROW(assemble_text("mov 99999, %o0"), AsmParseError);    // simm13
  EXPECT_THROW(assemble_text("x: nop\nx: nop"), AsmParseError);    // dup label
  EXPECT_THROW(assemble_text(".data\nadd %o0, %o1, %o2"), AsmParseError);
  EXPECT_THROW(assemble_text(".bogus 1"), AsmParseError);
  EXPECT_THROW(assemble_text("ld [%o0 + ], %o1"), AsmParseError);
}

TEST(AsmParser, TextEquivalentToBuilderProgram) {
  // The same kernel written both ways must produce identical code.
  Assembler b("t");
  b.mov(Reg::o0, 0);
  b.set32(Reg::o2, 0x40100000);
  auto loop = b.here();
  b.add(Reg::o0, Reg::o0, 3);
  b.cmp(Reg::o0, 30);
  b.bl(loop);
  b.nop();
  b.st(Reg::o0, Reg::o2, 0);
  b.halt();
  const Program built = b.finalize();

  const Program parsed = assemble_text(R"(
      mov 0, %o0
      sethi %hi(0x40100000), %o2
    loop:
      add %o0, 3, %o0
      cmp %o0, 30
      bl loop
      nop
      st %o0, [%o2]
      ta 0
  )");
  EXPECT_EQ(built.code, parsed.code);
}

// Property: disassembler output for every encodable instruction reassembles
// to the identical word (mutual consistency of the three ISA tools).
class DisasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DisasmRoundTrip, ReassemblesExactly) {
  Xoshiro256 rng(42 + GetParam());
  const u32 pc = kDefaultCodeBase;
  for (int i = 0; i < 400; ++i) {
    // Random valid instruction word.
    const u32 word = rng.next_u32();
    const DecodedInst d = decode(word);
    if (!d.valid()) continue;
    // CTIs carry pc-relative targets the text form resolves against absolute
    // addresses; handled below by assembling at the same base.
    const std::string text = disassemble(d, pc);
    if (text.rfind(".word", 0) == 0) continue;
    Program p;
    try {
      p = assemble_text(text + "\n", {});
    } catch (const AsmParseError& e) {
      FAIL() << "could not reassemble '" << text << "': " << e.what();
    }
    ASSERT_EQ(p.code.size(), 1u) << text;
    const DecodedInst d2 = decode(p.code[0]);
    EXPECT_EQ(d2.opcode, d.opcode) << text;
    EXPECT_EQ(d2.rd, d.rd) << text;
    EXPECT_EQ(d2.rs1, d.rs1) << text;
    EXPECT_EQ(d2.uses_imm, d.uses_imm) << text;
    if (d.uses_imm) EXPECT_EQ(d2.simm13, d.simm13) << text;
    else EXPECT_EQ(d2.rs2, d.rs2) << text;
    EXPECT_EQ(d2.disp, d.disp) << text;
    EXPECT_EQ(d2.annul, d.annul) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace issrtl::isa

// Node-major vector evaluation: the lowered latch-transfer kernel
// (rtl/veceval.hpp), the Leon3Core plan/apply/complete protocol and the
// engine's vec_eval knob must be pure performance features — every escape
// class falls back to the behavioral step for exactly the cycles that need
// it, and outcomes, latencies, trace records and fault::outcome_hash stay
// bit-identical to the behavioral lane-major path at every tile width,
// batch size, thread count and pipeline setting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "engine/rtl_backend.hpp"
#include "fault/campaign.hpp"
#include "isa/assembler.hpp"
#include "isa/decode.hpp"
#include "rtl/veceval.hpp"
#include "rtlcore/core.hpp"
#include "workloads/workload.hpp"

namespace issrtl::rtlcore {
namespace {

using engine::EngineOptions;
using engine::run_rtl_campaign;
using fault::CampaignConfig;
using fault::CampaignResult;
using fault::outcome_hash;
using isa::Assembler;
using isa::Program;
using isa::Reg;
using iss::HaltReason;

// ---- IR executor unit tests (raw SimContext) ------------------------------

/// Build a small tiled context with `lanes` replicas and three 32-bit regs
/// whose lane values are distinct known functions of (reg, lane).
struct IrFixture {
  rtl::SimContext sim;
  rtl::NodeId a, b, c;

  explicit IrFixture(std::size_t lanes, std::size_t tile) {
    a = sim.reg("a", "iu.t", 32).id();
    b = sim.reg("b", "iu.t", 32).id();
    c = sim.reg("c", "iu.t", 32).id();
    sim.set_replicas(lanes, rtl::LaneLayout::kTiled, tile);
    for (std::size_t l = 0; l < lanes; ++l) {
      sim.set_active_lane(l);
      sim.node(a).poke(0x1000u + static_cast<u32>(l));
      sim.node(b).poke(0x2000u + static_cast<u32>(l));
      sim.node(c).poke(0x3000u + static_cast<u32>(l));
    }
  }
  u32 at(rtl::NodeId id, std::size_t lane) {
    sim.set_active_lane(lane);
    return sim.node(id).r();
  }
};

/// All four op kinds over every tile, with per-tile masks, at a given tile
/// width. The tile-16 instantiation takes the AVX-512 kernel on hosts that
/// report the feature and the portable loop elsewhere — the expected values
/// are the same either way (that *is* the dispatch contract).
void exercise_op_kinds(std::size_t tile) {
  const std::size_t lanes = 2 * tile + 3;  // padded final tile
  IrFixture f(lanes, tile);
  const std::size_t ntiles = f.sim.tile_count();
  ASSERT_EQ(ntiles, 3u);

  rtl::VecProgram prog;
  prog.ctl_count = 2;
  // c = a (all lanes); b = 0 on ctl row 0; a = row1 ? b : c  (mux reads the
  // *current* b/c, unaffected by the earlier ops' next-value writes).
  prog.ops.push_back({rtl::VecOp::Kind::kCopy, 0, f.c, f.a, 0});
  prog.ops.push_back({rtl::VecOp::Kind::kMaskedZero, 0, f.b, 0, 0});
  prog.ops.push_back({rtl::VecOp::Kind::kMux2, 1, f.a, f.b, f.c});

  std::vector<u32> tiles;
  for (u32 t = 0; t < ntiles; ++t) tiles.push_back(t);
  // Row 0: odd lanes of every tile. Row 1: lanes 0/1 of every tile.
  std::vector<u64> masks(2 * ntiles, 0);
  for (std::size_t t = 0; t < ntiles; ++t) {
    u64 odd = 0;
    for (std::size_t l = 1; l < tile; l += 2) odd |= u64{1} << l;
    masks[0 * ntiles + t] = odd;
    masks[1 * ntiles + t] = 0b11;
  }
  rtl::vec_execute(f.sim, prog, tiles, masks);
  f.sim.commit_lanes();

  for (std::size_t l = 0; l < lanes; ++l) {
    const u32 la = 0x1000u + static_cast<u32>(l);
    const u32 lb = 0x2000u + static_cast<u32>(l);
    const u32 lc = 0x3000u + static_cast<u32>(l);
    const bool odd = (l % tile) % 2 == 1;
    const bool low2 = (l % tile) < 2;
    EXPECT_EQ(f.at(f.c, l), la) << "kCopy lane " << l;
    EXPECT_EQ(f.at(f.b, l), odd ? 0u : lb) << "kMaskedZero lane " << l;
    EXPECT_EQ(f.at(f.a, l), low2 ? lb : lc) << "kMux2 lane " << l;
  }
}

TEST(VecEvalIR, OpKindsTile8Portable) { exercise_op_kinds(8); }

TEST(VecEvalIR, OpKindsTile16Dispatch) { exercise_op_kinds(16); }

TEST(VecEvalIR, MaskedCopyTouchesOnlySelectedLanes) {
  constexpr std::size_t kTile = 8;
  IrFixture f(kTile, kTile);
  rtl::VecProgram prog;
  prog.ctl_count = 1;
  prog.ops.push_back({rtl::VecOp::Kind::kMaskedCopy, 0, f.b, f.a, 0});
  rtl::vec_execute(f.sim, prog, {0}, {0b00100101});
  f.sim.commit_lanes();
  for (std::size_t l = 0; l < kTile; ++l) {
    const bool sel = (0b00100101u >> l) & 1;
    EXPECT_EQ(f.at(f.b, l),
              sel ? 0x1000u + static_cast<u32>(l) : 0x2000u + static_cast<u32>(l))
        << l;
  }
}

TEST(VecEvalIR, EmptyTilesAndEmptyProgramAreNoOps) {
  IrFixture f(8, 8);
  rtl::VecProgram empty;
  rtl::vec_execute(f.sim, empty, {0}, {});  // no ops
  rtl::VecProgram prog;
  prog.ctl_count = 1;
  prog.ops.push_back({rtl::VecOp::Kind::kMaskedZero, 0, f.a, 0, 0});
  rtl::vec_execute(f.sim, prog, {}, {});  // no tiles
  f.sim.commit_lanes();
  EXPECT_EQ(f.at(f.a, 3), 0x1003u);
}

// ---- the lowered program --------------------------------------------------

TEST(VecEval, ProgramLowersFiveLatchesAsMaskedCopyPlusBubble) {
  Memory mem;
  Leon3Core core(mem);
  const rtl::VecProgram& p = core.veceval_program();
  // 5 latches x (kFieldCount masked copies + 1 bubble zero), 10 mask rows.
  EXPECT_EQ(p.ctl_count, 10u);
  ASSERT_EQ(p.ops.size(), 5u * (PipeSlot::kFieldCount + 1));
  std::size_t copies = 0, zeros = 0;
  for (const rtl::VecOp& op : p.ops) {
    if (op.kind == rtl::VecOp::Kind::kMaskedCopy) {
      ++copies;
      EXPECT_LT(op.ctl, 5u);
    } else {
      ASSERT_EQ(op.kind, rtl::VecOp::Kind::kMaskedZero);
      ++zeros;
      EXPECT_GE(op.ctl, 5u);
      EXPECT_LT(op.ctl, 10u);
    }
  }
  EXPECT_EQ(copies, 5u * PipeSlot::kFieldCount);
  EXPECT_EQ(zeros, 5u);
}

// ---- escape classes: vec-driven vs behavioral, byte-identical -------------

/// Drive lane 0 of a kTiled core through the three-phase vector protocol
/// until halt (or the cycle cap), escaping to the behavioral step exactly
/// like the engine's lockstep round. Tallies per-reason escape counts.
struct VecDrive {
  u64 planned = 0;
  u64 escaped = 0;
  std::map<VecEscape, u64> reasons;

  u64 count(VecEscape e) const {
    const auto it = reasons.find(e);
    return it == reasons.end() ? 0 : it->second;
  }
};

VecDrive drive_vec(Leon3Core& core, u64 max_cycles) {
  VecDrive d;
  std::vector<u8> stepped(core.lane_count(), 0);
  for (u64 i = 0; i < max_cycles; ++i) {
    if (core.lane_state(0).halt != HaltReason::kRunning) break;
    std::fill(stepped.begin(), stepped.end(), 0);
    core.select_lane_fast(0);
    const VecEscape e = core.plan_vec_cycle();
    if (e == VecEscape::kNone) {
      ++d.planned;
    } else {
      ++d.escaped;
      ++d.reasons[e];
      core.step_no_commit();
    }
    stepped[0] = 1;
    if (!core.vec_pending_lanes().empty()) {
      core.apply_vec_transfers();
      core.complete_vec_cycle();  // lane 0 is active
      core.clear_vec_pending();
    }
    core.sim().commit_lanes(stepped);
  }
  return d;
}

void expect_identical_traces(const OffCoreTrace& a, const OffCoreTrace& b) {
  ASSERT_EQ(a.writes().size(), b.writes().size());
  for (std::size_t i = 0; i < a.writes().size(); ++i) {
    EXPECT_EQ(a.writes()[i].cycle, b.writes()[i].cycle) << "write " << i;
    EXPECT_TRUE(a.writes()[i].same_payload(b.writes()[i])) << "write " << i;
  }
  ASSERT_EQ(a.reads().size(), b.reads().size());
  for (std::size_t i = 0; i < a.reads().size(); ++i) {
    EXPECT_EQ(a.reads()[i].cycle, b.reads()[i].cycle) << "read " << i;
    EXPECT_TRUE(a.reads()[i].same_payload(b.reads()[i])) << "read " << i;
  }
}

/// Run `prog` behaviorally and vec-driven; pin halt reason, trap code,
/// cycle/instret counters, architectural state, node values and every bus
/// record, and return the vec run's escape tallies.
VecDrive expect_vec_identical(const Program& prog, u64 max_cycles = 200'000) {
  Memory mem_a;
  Leon3Core ref(mem_a);
  ref.load(prog);
  ref.run(max_cycles);

  Memory mem_b;
  Leon3Core vec(mem_b);
  vec.load(prog);
  vec.enable_lanes(2, rtl::LaneLayout::kTiled, 8);  // lane 1 idles
  const VecDrive d = drive_vec(vec, max_cycles);

  EXPECT_EQ(ref.halt_reason(), vec.halt_reason());
  EXPECT_EQ(ref.trap_code(), vec.trap_code());
  EXPECT_EQ(ref.cycles(), vec.lane_state(0).cycle);
  EXPECT_EQ(ref.instret(), vec.lane_state(0).instret);
  const iss::ArchState sa = ref.arch_state();
  vec.select_lane_fast(0);
  const iss::ArchState sb = vec.arch_state();
  EXPECT_EQ(sa.regs, sb.regs);
  EXPECT_EQ(sa.cwp, sb.cwp);
  EXPECT_EQ(sa.icc.nzvc, sb.icc.nzvc);
  EXPECT_EQ(sa.y, sb.y);
  expect_identical_traces(ref.offcore(), vec.lane_state(0).bus);
  // The vector path must actually engage — an all-escape run would make
  // the bit-identity claim vacuous.
  EXPECT_GT(d.planned, 0u);
  return d;
}

// One builder per escape class, shared between the per-class trace-identity
// tests below and the engine-level pipeline/vec campaign matrix.

Program make_trap_prog() {
  Assembler a("trap");
  a.set32(Reg::o0, 7);
  a.add(Reg::o1, Reg::o0, 35);
  a.ta(5);  // soft trap: drains through ME/XC as a trap packet
  return a.finalize();
}

Program make_imiss_prog() {
  Assembler a("imiss");
  // Straight-line code well past the 1 KiB icache: every 16-byte line is a
  // compulsory fetch miss, so the kFetchMiss escape fires throughout.
  for (int i = 0; i < 400; ++i) a.add(Reg::o0, Reg::o0, 1);
  a.halt();
  return a.finalize();
}

Program make_wover_prog() {
  Assembler a("wover");
  for (unsigned i = 0; i < isa::kNumWindows; ++i) {
    a.save(isa::kSp, isa::kSp, -64);
  }
  a.halt();  // unreachable: the last save traps
  return a.finalize();
}

Program make_wunder_prog() {
  Assembler a("wunder");
  a.add(Reg::o0, Reg::g0, 1);  // a planned cycle or two before the trap
  a.restore(Reg::g0, Reg::g0, 0);  // depth 0: underflow trap
  a.halt();
  return a.finalize();
}

Program make_smc_prog() {
  // Patch an instruction in the code image, then execute the patch site and
  // publish the result to the bus. Whether the (write-through, but not
  // icache-coherent) store is visible at fetch time is the core's business —
  // the vec-driven run must reproduce the behavioral answer byte-for-byte.
  // Assembled in two passes: pass 1 learns the patch site's address, pass 2
  // bakes it in (the instruction stream has the same shape both times).
  const u32 patched_word = 0x9410202Au;  // or %g0, 42, %o2 — checked below
  {
    const isa::DecodedInst di = isa::decode(patched_word);
    EXPECT_EQ(di.iclass, isa::InstClass::kAlu);
    EXPECT_EQ(di.rd, 10u);  // %o2
    EXPECT_EQ(di.simm13, 42);
  }
  auto build = [&](u32 site_addr, u32* site_out) {
    Assembler a("smc");
    auto buf = a.data_zero(16);
    a.set32(Reg::o1, patched_word);
    a.set32(Reg::o0, site_addr);
    a.st(Reg::o1, Reg::o0, 0);  // self-modifying store into the code image
    a.set32(Reg::o4, buf);
    a.nop();
    *site_out = a.current_pc();
    a.or_(Reg::o2, Reg::g0, 7);  // the patch site (stale value 7)
    a.st(Reg::o2, Reg::o4, 0);   // publish o2: a bus write either way
    a.halt();
    return a.finalize();
  };
  // Placeholder must need the same sethi/or encoding length as the real
  // site address (nonzero low bits), or the second pass would shift the site.
  u32 site1 = 0, site2 = 0;
  (void)build(isa::kDefaultCodeBase + 4, &site1);
  Program prog = build(site1, &site2);
  EXPECT_EQ(site1, site2) << "two-pass assembly must converge";
  return prog;
}

Program make_mulcti_prog() {
  Assembler a("mulcti");
  a.set32(Reg::o0, 123);
  a.set32(Reg::o1, 45);
  a.umul(Reg::o2, Reg::o0, Reg::o1);   // multicycle EX occupancy
  a.sdiv(Reg::o3, Reg::o2, Reg::o1);   // likewise
  auto l = a.label();
  a.bind(l);
  a.subcc(Reg::o1, Reg::o1, 1);
  a.bne(l);                            // CTI with delay slot
  a.nop();
  a.halt();
  return a.finalize();
}

TEST(VecEvalEscape, TrapCommitEscapesAndMatches) {
  const VecDrive d = expect_vec_identical(make_trap_prog());
  EXPECT_GT(d.count(VecEscape::kTrap), 0u);
}

TEST(VecEvalEscape, IcacheMissEscapesAndMatches) {
  const VecDrive d = expect_vec_identical(make_imiss_prog());
  EXPECT_GT(d.count(VecEscape::kFetchMiss), 0u);
}

TEST(VecEvalEscape, WindowOverflowEscapesAndMatches) {
  const VecDrive d = expect_vec_identical(make_wover_prog());
  EXPECT_GT(d.count(VecEscape::kWindow), 0u);
}

TEST(VecEvalEscape, WindowUnderflowEscapesAndMatches) {
  const VecDrive d = expect_vec_identical(make_wunder_prog());
  EXPECT_GT(d.count(VecEscape::kWindow), 0u);
}

TEST(VecEvalEscape, SelfModifyingStoreEscapesAndMatches) {
  const VecDrive d = expect_vec_identical(make_smc_prog());
  EXPECT_GT(d.count(VecEscape::kMemOp), 0u);
}

TEST(VecEvalEscape, MulticycleAndCtiEscapeAndMatch) {
  const VecDrive d = expect_vec_identical(make_mulcti_prog());
  EXPECT_GT(d.count(VecEscape::kMulticycle), 0u);
  EXPECT_GT(d.count(VecEscape::kCti), 0u);
}

// Campaign-safe variants for the classes whose direct program *ends* in a
// trap: the engine requires a cleanly-halting golden run, so the trapping
// path is guarded off in the golden flow but stays one flipped bit away —
// injected faults steer lanes into the same trap/window machinery the
// trace-identity tests above pin directly.

Program make_trap_campaign_prog() {
  Assembler a("trap_c");
  a.clr(Reg::o0);
  a.cmp(Reg::o0, 0);
  auto skip = a.label();
  a.be(skip);  // golden: taken, no trap
  a.nop();
  a.ta(5);  // reached only when a fault perturbs the compare/branch
  a.bind(skip);
  a.halt();
  return a.finalize();
}

Program make_window_campaign_prog() {
  Assembler a("window_c");
  // Balanced save/restore ladder one short of the overflow depth: golden
  // halts cleanly, while a fault in the CWP/WIM logic tips a lane into the
  // overflow or underflow trap.
  for (unsigned i = 0; i + 1 < isa::kNumWindows; ++i) {
    a.save(isa::kSp, isa::kSp, -64);
  }
  for (unsigned i = 0; i + 1 < isa::kNumWindows; ++i) {
    a.restore(Reg::g0, Reg::g0, 0);
  }
  a.halt();
  return a.finalize();
}

// Every escape-class program, end-to-end through the engine: a faulted lane
// that escapes mid-round must produce the same campaign outcomes whether the
// round runs lowered or behaviorally, under both the synchronous lockstep
// loop and the staged pipeline driver.
TEST(VecEvalEngine, EscapeProgramsPinnedAcrossPipelineAndVec) {
  struct Case {
    const char* name;
    Program (*build)();
  };
  const Case cases[] = {
      {"trap", make_trap_campaign_prog},
      {"imiss", make_imiss_prog},
      {"window", make_window_campaign_prog},
      {"smc", make_smc_prog},
      {"mulcti", make_mulcti_prog},
  };
  for (const Case& c : cases) {
    const Program prog = c.build();
    CampaignConfig cfg;
    cfg.unit_prefix = "iu";
    cfg.samples = 6;
    cfg.instants_per_site = 2;
    cfg.models = {rtl::FaultModel::kTransientBitFlip};
    cfg.inject_time = fault::InjectTime::kUniformRandom;

    EngineOptions serial;
    serial.threads = 1;  // serial per-site path: the behavioral reference
    const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

    for (const bool vec : {false, true}) {
      for (const bool pipeline : {false, true}) {
        EngineOptions opts;
        opts.threads = 2;
        opts.batch_lanes = 8;
        opts.vec_eval = vec;
        opts.pipeline = pipeline;
        const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
        const std::string label = std::string(c.name) +
                                  " vec=" + std::to_string(vec) +
                                  " pipeline=" + std::to_string(pipeline);
        ASSERT_EQ(reference.runs.size(), r.runs.size()) << label;
        EXPECT_EQ(outcome_hash(reference), outcome_hash(r)) << label;
      }
    }
  }
}

// ---- differential fuzz: multi-lane planned vs behavioral ------------------

/// Both cores carry kLanes staggered replicas of a real workload; every
/// round the vec core plans/escapes each live lane and the reference core
/// steps each behaviorally; after every shared commit all lanes' node
/// values and host scalars must match bit-for-bit. A transient fault armed
/// mid-run on one lane exercises the kArmedFault escape and the overlay
/// write-through on both sides identically.
TEST(VecEvalFuzz, MultiLanePlannedVsBehavioralBitForBit) {
  constexpr unsigned kLanes = 11;  // crosses a tile boundary, odd count
  constexpr int kRounds = 3000;
  const Program prog =
      workloads::build("rspeed", {.iterations = 1, .data_seed = 7});

  auto make = [&](Memory& mem) {
    auto core = std::make_unique<Leon3Core>(mem);
    core->load(prog);
    core->enable_lanes(kLanes, rtl::LaneLayout::kTiled, 8);
    for (unsigned j = 1; j < kLanes; ++j) core->clone_active_lane_to(j);
    return core;
  };
  Memory mem_a, mem_b;
  auto ref = make(mem_a);
  auto vec = make(mem_b);

  // Stagger the lanes so every pipeline phase is represented: lane j runs j
  // warm-up cycles, mirrored behaviorally on both cores.
  for (unsigned j = 0; j < kLanes; ++j) {
    std::vector<u8> mask(kLanes, 0);
    mask[j] = 1;
    for (unsigned c = 0; c < j; ++c) {
      for (Leon3Core* core : {ref.get(), vec.get()}) {
        core->select_lane_fast(j);
        core->step_no_commit();
        core->sim().commit_lanes(mask);
      }
    }
  }

  Xoshiro256 rng(0xBADC0FFEEull);
  std::vector<u8> stepped(kLanes, 0);
  std::vector<u32> snap;
  u64 planned = 0, escaped = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Occasionally arm a mirrored transient flip on a random lane (when
    // that lane has no overlay yet) — it must force the kArmedFault escape
    // and still match the behavioral run bit-for-bit.
    if (round % 97 == 13) {
      const unsigned lane = static_cast<unsigned>(rng.next_below(kLanes));
      const rtl::NodeId node = static_cast<rtl::NodeId>(
          rng.next_below(ref->sim().node_count()));
      const u8 bit =
          static_cast<u8>(rng.next_below(ref->sim().width(node)));
      for (Leon3Core* core : {ref.get(), vec.get()}) {
        core->select_lane_fast(lane);
        try {
          core->sim().arm_fault(node, rtl::FaultModel::kTransientBitFlip,
                                bit);
        } catch (const std::logic_error&) {
          // already armed on this lane — skipped identically on both cores
        }
      }
    }
    std::fill(stepped.begin(), stepped.end(), 0);
    // Reference: behavioral steps, shared commit.
    for (unsigned j = 0; j < kLanes; ++j) {
      if (ref->lane_state(j).halt != HaltReason::kRunning) continue;
      ref->select_lane_fast(j);
      ref->step_no_commit();
      stepped[j] = 1;
    }
    ref->select_lane_fast(0);
    ref->sim().commit_lanes(stepped);
    // Vec: plan-or-step, one transfer pass, per-lane compute, same commit.
    std::fill(stepped.begin(), stepped.end(), 0);
    for (unsigned j = 0; j < kLanes; ++j) {
      if (vec->lane_state(j).halt != HaltReason::kRunning) continue;
      vec->select_lane_fast(j);
      if (vec->plan_vec_cycle() == VecEscape::kNone) {
        ++planned;
      } else {
        ++escaped;
        vec->step_no_commit();
      }
      stepped[j] = 1;
    }
    if (!vec->vec_pending_lanes().empty()) {
      vec->apply_vec_transfers();
      for (const unsigned lane : vec->vec_pending_lanes()) {
        vec->select_lane_fast(lane);
        vec->complete_vec_cycle();
      }
      vec->clear_vec_pending();
    }
    vec->select_lane_fast(0);
    vec->sim().commit_lanes(stepped);

    // Every lane, every round: node values + host scalars must agree.
    for (unsigned j = 0; j < kLanes; ++j) {
      ref->select_lane_fast(j);
      ref->save_node_values(snap);
      vec->select_lane_fast(j);
      ASSERT_TRUE(vec->node_values_equal(snap))
          << "lane " << j << " diverged at round " << round;
      ASSERT_EQ(ref->lane_state(j).cycle, vec->lane_state(j).cycle) << j;
      ASSERT_EQ(ref->lane_state(j).instret, vec->lane_state(j).instret) << j;
      ASSERT_EQ(ref->lane_state(j).halt, vec->lane_state(j).halt) << j;
    }
  }
  // The fuzz is only meaningful when both paths actually ran.
  EXPECT_GT(planned, 0u);
  EXPECT_GT(escaped, 0u);
  for (unsigned j = 0; j < kLanes; ++j) {
    expect_identical_traces(ref->lane_state(j).bus, vec->lane_state(j).bus);
  }
}

// ---- engine matrix: outcome_hash pinned across every axis ------------------

TEST(VecEvalEngine, OutcomeHashPinnedAcrossVecTileBatchThreadsPipeline) {
  const Program prog =
      workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";  // all IU subunits: every escape class shows up
  cfg.samples = 20;
  cfg.instants_per_site = 3;
  cfg.models = {rtl::FaultModel::kTransientBitFlip, rtl::FaultModel::kStuckAt0};
  cfg.inject_time = fault::InjectTime::kUniformRandom;

  EngineOptions serial;
  serial.threads = 1;  // serial per-site path: the behavioral reference
  const CampaignResult reference = run_rtl_campaign(prog, cfg, {}, serial);

  for (const bool vec : {false, true}) {
    for (const unsigned tile : {8u, 16u}) {
      for (const unsigned threads : {1u, 3u}) {
        for (const bool pipeline : {false, true}) {
          EngineOptions opts;
          opts.threads = threads;
          opts.batch_lanes = 16;
          opts.simd_tile = tile;
          opts.vec_eval = vec;
          opts.pipeline = pipeline;
          const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
          const std::string label =
              "vec=" + std::to_string(vec) + " tile=" + std::to_string(tile) +
              " threads=" + std::to_string(threads) +
              " pipeline=" + std::to_string(pipeline);
          ASSERT_EQ(reference.runs.size(), r.runs.size()) << label;
          EXPECT_EQ(outcome_hash(reference), outcome_hash(r)) << label;
          // The knob must do what it says: lowered lane-cycles appear
          // exactly when vec_eval is on (and some cycles always escape —
          // every run ends in a trap or a memory access).
          if (vec) {
            EXPECT_GT(r.replay.veceval_lane_cycles, 0u) << label;
            EXPECT_GT(r.replay.veceval_rounds, 0u) << label;
            EXPECT_GT(r.replay.veceval_escapes, 0u) << label;
          } else {
            EXPECT_EQ(r.replay.veceval_lane_cycles, 0u) << label;
            EXPECT_EQ(r.replay.veceval_rounds, 0u) << label;
            EXPECT_EQ(r.replay.veceval_escapes, 0u) << label;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace issrtl::rtlcore

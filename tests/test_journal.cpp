// Durability-layer tests: crash-and-resume determinism of the write-ahead
// outcome journal (kill points including mid-batch and mid-compaction
// retirement orders, torn and corrupted records), graceful shutdown via the
// cooperative stop flag and the wall-clock deadline, and worker fault
// isolation (the ISSRTL_FAIL_SITE throw hook exercising the retry →
// kEngineError path on the serial, batched and SIMD schedulers).
//
// The load-bearing claim everywhere: a campaign interrupted at ANY point
// and resumed under ANY (threads, batch, SIMD) configuration merges into a
// result bit-identical — outcomes, latencies, fault::outcome_hash — to an
// uninterrupted run, because per-site records depend only on the site and
// the golden run.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/iss_backend.hpp"
#include "engine/journal.hpp"
#include "engine/rtl_backend.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

namespace fs = std::filesystem;

using fault::CampaignConfig;
using fault::CampaignResult;
using fault::Outcome;
using rtl::FaultModel;

isa::Program small_workload() {
  return workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
}

CampaignConfig small_cfg() {
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = 24;
  cfg.models = {FaultModel::kStuckAt1};
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  return cfg;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("issrtl_journal_" + std::string(info->name()) + "_" +
                        tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// The single journal file a campaign left under `dir`.
fs::path journal_file_in(const std::string& dir) {
  fs::path found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "more than one journal file in " << dir;
    found = entry.path();
  }
  EXPECT_FALSE(found.empty()) << "no journal file in " << dir;
  return found;
}

std::vector<std::string> read_lines(const fs::path& file) {
  std::ifstream in(file);
  EXPECT_TRUE(in.good()) << file;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_file(const fs::path& file, const std::string& content) {
  std::ofstream out(file, std::ios::trunc);
  ASSERT_TRUE(out.good()) << file;
  out << content;
}

std::string join_lines(const std::vector<std::string>& lines,
                       std::size_t count) {
  std::string out;
  for (std::size_t i = 0; i < count && i < lines.size(); ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(fault::outcome_hash(a), fault::outcome_hash(b));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].site.node, b.runs[i].site.node) << i;
    EXPECT_EQ(a.runs[i].site.bit, b.runs[i].site.bit) << i;
    EXPECT_EQ(a.runs[i].site.inject_cycle, b.runs[i].site.inject_cycle) << i;
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    EXPECT_EQ(a.runs[i].latency_cycles, b.runs[i].latency_cycles) << i;
    EXPECT_EQ(a.runs[i].error, b.runs[i].error) << i;
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    EXPECT_EQ(a.per_model[m].failures, b.per_model[m].failures);
    EXPECT_EQ(a.per_model[m].hangs, b.per_model[m].hangs);
    EXPECT_EQ(a.per_model[m].latent, b.per_model[m].latent);
    EXPECT_EQ(a.per_model[m].silent, b.per_model[m].silent);
    EXPECT_EQ(a.per_model[m].errors, b.per_model[m].errors);
    EXPECT_EQ(a.per_model[m].max_latency, b.per_model[m].max_latency);
    EXPECT_DOUBLE_EQ(a.per_model[m].mean_latency, b.per_model[m].mean_latency);
  }
}

EngineOptions journal_opts(const std::string& dir, bool resume,
                           unsigned threads = 1, unsigned batch = 1,
                           bool simd = true) {
  EngineOptions opts;
  opts.threads = threads;
  opts.batch_lanes = batch;
  opts.simd_lanes = simd;
  opts.journal_dir = dir;
  opts.resume = resume;
  return opts;
}

// ---- journal unit behaviour -------------------------------------------------

TEST(Journal, AppendAndRecoverRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  const u64 key = 0x1234abcd5678ef01ull;
  {
    OutcomeJournal j(dir, key, 5, /*resume=*/false);
    for (std::size_t i = 0; i < 4; ++i) {
      JournalEntry e;
      e.index = i;
      e.site_key = 100 + i;
      e.outcome = static_cast<u32>(i % 3);
      e.latency = 1000 * i;
      e.halt = static_cast<u32>(i);
      // Exercise the field escaping: errors may hold spaces and newlines.
      e.error = i == 2 ? "boom: lane 7\nsecond line %x" : "";
      j.append(e);
    }
  }
  OutcomeJournal j(dir, key, 5, /*resume=*/true);
  EXPECT_EQ(j.dropped_records(), 0u);
  ASSERT_EQ(j.recovered().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const JournalEntry& e = j.recovered()[i];
    EXPECT_EQ(e.index, i);
    EXPECT_EQ(e.site_key, 100 + i);
    EXPECT_EQ(e.outcome, static_cast<u32>(i % 3));
    EXPECT_EQ(e.latency, 1000 * i);
    EXPECT_EQ(e.halt, static_cast<u32>(i));
    EXPECT_EQ(e.error, i == 2 ? "boom: lane 7\nsecond line %x" : "");
  }
}

TEST(Journal, RecoveryDropsTornTailAndCompacts) {
  const std::string dir = scratch_dir("torn");
  const u64 key = 42;
  {
    OutcomeJournal j(dir, key, 8, false);
    for (std::size_t i = 0; i < 6; ++i) {
      JournalEntry e;
      e.index = i;
      e.site_key = i;
      j.append(e);
    }
  }
  const fs::path file = journal_file_in(dir);
  const auto lines = read_lines(file);
  ASSERT_EQ(lines.size(), 7u);  // header + 6 records
  // Crash mid-append: keep 4 full records plus half of the fifth.
  write_file(file, join_lines(lines, 5) + lines[5].substr(0, 20));
  OutcomeJournal j(dir, key, 8, true);
  EXPECT_EQ(j.recovered().size(), 4u);
  EXPECT_GE(j.dropped_records(), 1u);
  // The rewrite compacted the file back to the valid prefix.
  EXPECT_EQ(read_lines(file).size(), 5u);
}

TEST(Journal, NonResumeOpenTruncatesExistingFile) {
  const std::string dir = scratch_dir("truncate");
  const u64 key = 7;
  {
    OutcomeJournal j(dir, key, 4, false);
    JournalEntry e;
    j.append(e);
  }
  OutcomeJournal j(dir, key, 4, /*resume=*/false);
  EXPECT_TRUE(j.recovered().empty());
  EXPECT_EQ(read_lines(journal_file_in(dir)).size(), 1u);  // header only
}

TEST(Journal, DifferentCampaignKeysUseDifferentFiles) {
  const std::string dir = scratch_dir("keys");
  OutcomeJournal a(dir, 1, 4, false);
  OutcomeJournal b(dir, 2, 4, false);
  EXPECT_NE(a.path(), b.path());
}

// ---- crash-and-resume determinism -------------------------------------------

// The acceptance matrix: a campaign killed at several journal cut points —
// including cuts of a batched/SIMD run's retirement order, i.e. mid-batch
// and mid-compaction crashes — and resumed under every (threads, batch,
// SIMD) combination must be bit-identical to the uninterrupted run.
TEST(JournalResume, KillPointsTimesScheduleMatrix) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();

  // Uninterrupted reference, serial scheduler.
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, journal_opts("", false));
  ASSERT_EQ(ref.runs.size(), 24u);
  EXPECT_FALSE(ref.truncated);

  // Produce a complete journal under the batched SIMD scheduler with 3
  // threads: the file's record order is the pool's retirement order, so a
  // prefix of it is exactly what a crash mid-batch / mid-compaction leaves.
  const std::string full_dir = scratch_dir("full");
  const CampaignResult journaled =
      run_rtl_campaign(prog, cfg, {}, journal_opts(full_dir, false, 3, 32, true));
  expect_identical(ref, journaled);
  const fs::path full_file = journal_file_in(full_dir);
  const auto lines = read_lines(full_file);
  ASSERT_EQ(lines.size(), 25u);  // header + 24 records

  struct Cut {
    const char* tag;
    std::size_t records;  ///< intact records kept
    bool torn;            ///< append half of the next record, no newline
  };
  // Kill points: before any site retired, mid-campaign, and a torn append
  // (the crash window between fwrite and the next fflush).
  const Cut cuts[] = {{"header", 0, false}, {"mid", 8, false}, {"torn", 16, true}};

  for (const Cut& cut : cuts) {
    std::string content = join_lines(lines, 1 + cut.records);
    if (cut.torn) content += lines[1 + cut.records].substr(0, 30);
    for (const unsigned threads : {1u, 3u}) {
      for (const unsigned batch : {1u, 32u}) {
        for (const bool simd : {true, false}) {
          const std::string tag = std::string(cut.tag) + "_t" +
                                  std::to_string(threads) + "_b" +
                                  std::to_string(batch) + (simd ? "_s1" : "_s0");
          const std::string dir = scratch_dir(tag);
          write_file(fs::path(dir) / full_file.filename(), content);
          const CampaignResult r = run_rtl_campaign(
              prog, cfg, {}, journal_opts(dir, true, threads, batch, simd));
          SCOPED_TRACE(tag);
          expect_identical(ref, r);
          EXPECT_FALSE(r.truncated);
          EXPECT_EQ(r.completed_sites, 24u);
          EXPECT_EQ(r.replay.journal_hits, cut.records);
          if (cut.torn) EXPECT_GE(r.replay.journal_dropped, 1u);
          // The resumed run's journal is complete again: a second resume
          // imports everything.
          const CampaignResult again =
              run_rtl_campaign(prog, cfg, {}, journal_opts(dir, true));
          expect_identical(ref, again);
          EXPECT_EQ(again.replay.journal_hits, 24u);
        }
      }
    }
  }
}

TEST(JournalResume, CorruptedRecordIsReSimulatedNotImported) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  const std::string dir = scratch_dir("corrupt");
  run_rtl_campaign(prog, cfg, {}, journal_opts(dir, false));
  const fs::path file = journal_file_in(dir);
  auto lines = read_lines(file);
  ASSERT_EQ(lines.size(), 25u);
  // Flip one byte inside record 10's site key: the hash chain must break
  // there, and recovery must drop that record AND everything after it —
  // once the chain is broken nothing downstream is verifiable.
  std::string& line = lines[11];
  const std::size_t at = line.find(' ', 2) + 1;  // first site-key character
  line[at] = line[at] == '0' ? '1' : '0';
  write_file(file, join_lines(lines, lines.size()));

  const CampaignResult r =
      run_rtl_campaign(prog, cfg, {}, journal_opts(dir, true));
  expect_identical(ref, r);
  EXPECT_EQ(r.replay.journal_hits, 10u);
  EXPECT_GE(r.replay.journal_dropped, 14u);
}

TEST(JournalResume, FreshRunTruncatesStaleJournal) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const std::string dir = scratch_dir("stale");
  run_rtl_campaign(prog, cfg, {}, journal_opts(dir, false));
  // Same journal dir, resume NOT requested: the stale records must not be
  // imported.
  const CampaignResult r =
      run_rtl_campaign(prog, cfg, {}, journal_opts(dir, false));
  EXPECT_EQ(r.replay.journal_hits, 0u);
  EXPECT_EQ(r.completed_sites, 24u);
}

// ---- graceful shutdown ------------------------------------------------------

TEST(Shutdown, StopFlagTruncatesThenResumeCompletes) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  const std::string dir = scratch_dir("stop");
  std::atomic<bool> stop{false};
  EngineOptions opts = journal_opts(dir, false);
  opts.stop = &stop;
  opts.progress_stride = 1;
  opts.on_progress = [&stop](const EngineProgress& p) {
    if (p.completed >= 3) stop.store(true, std::memory_order_relaxed);
  };
  const CampaignResult cut = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_TRUE(cut.truncated);
  EXPECT_LT(cut.completed_sites, cut.total_sites);
  EXPECT_GE(cut.completed_sites, 3u);
  EXPECT_EQ(cut.total_sites, 24u);
  // Truncated results hold the completed records only, each bit-identical
  // to its uninterrupted counterpart... and the stats cover exactly them.
  std::size_t runs = 0;
  for (const auto& s : cut.per_model) runs += s.runs;
  EXPECT_EQ(runs, cut.completed_sites);

  // The journal holds what completed; a resumed run finishes the rest and
  // merges bit-identically.
  const CampaignResult resumed =
      run_rtl_campaign(prog, cfg, {}, journal_opts(dir, true, 3, 32, true));
  expect_identical(ref, resumed);
  EXPECT_FALSE(resumed.truncated);
  EXPECT_EQ(resumed.replay.journal_hits, cut.completed_sites);
}

TEST(Shutdown, StopFlagTruncatesBatchedScheduler) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  const std::string dir = scratch_dir("stop_batched");
  std::atomic<bool> stop{false};
  EngineOptions opts = journal_opts(dir, false, 1, 8, true);
  opts.stop = &stop;
  opts.progress_stride = 1;
  opts.on_progress = [&stop](const EngineProgress& p) {
    if (p.completed >= 2) stop.store(true, std::memory_order_relaxed);
  };
  const CampaignResult cut = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_TRUE(cut.truncated);
  EXPECT_GE(cut.completed_sites, 2u);
  EXPECT_LT(cut.completed_sites, cut.total_sites);

  const CampaignResult resumed =
      run_rtl_campaign(prog, cfg, {}, journal_opts(dir, true));
  expect_identical(ref, resumed);
  EXPECT_EQ(resumed.replay.journal_hits, cut.completed_sites);
}

TEST(Shutdown, DeadlineTruncates) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  EngineOptions opts;
  opts.threads = 1;
  opts.deadline_ms = 1;  // expires long before 24 RTL sites can finish
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_LT(r.completed_sites, r.total_sites);
  EXPECT_EQ(r.total_sites, 24u);
}

TEST(Shutdown, SignalStopFlagIsSticky) {
  // install_signal_stop is exercised end-to-end by the CLI; here just pin
  // the flag plumbing: signal_stop_flag() is process-global and resettable.
  std::atomic<bool>& flag = signal_stop_flag();
  flag.store(false);
  EXPECT_FALSE(flag.load());
  flag.store(true);
  EXPECT_TRUE(flag.load());
  flag.store(false);
}

// ---- worker fault isolation -------------------------------------------------

TEST(FaultIsolation, PersistentThrowClassifiesEngineErrorThatSiteOnly) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  EngineOptions opts;
  opts.threads = 1;
  opts.fail_sites = "3";
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  ASSERT_EQ(r.runs.size(), ref.runs.size());
  for (std::size_t i = 0; i < r.runs.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(r.runs[i].outcome, Outcome::kEngineError);
      EXPECT_NE(r.runs[i].error.find("ISSRTL_FAIL_SITE"), std::string::npos)
          << r.runs[i].error;
    } else {
      EXPECT_EQ(r.runs[i].outcome, ref.runs[i].outcome) << i;
      EXPECT_EQ(r.runs[i].latency_cycles, ref.runs[i].latency_cycles) << i;
    }
  }
  EXPECT_EQ(r.replay.sites_retried, 1u);
  EXPECT_EQ(r.replay.sites_engine_error, 1u);
  EXPECT_EQ(r.per_model[0].errors, 1u);
  EXPECT_FALSE(r.truncated);
  // kEngineError is not a verdict about the fault: pf() excludes it from
  // the denominator instead of diluting the failure rate.
  EXPECT_DOUBLE_EQ(r.per_model[0].pf(),
                   static_cast<double>(r.per_model[0].failures) / 23.0);
}

TEST(FaultIsolation, TransientThrowRetriesToIdenticalResult) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  EngineOptions opts;
  opts.threads = 1;
  opts.fail_sites = "5:once";
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  expect_identical(ref, r);
  EXPECT_EQ(r.replay.sites_retried, 1u);
  EXPECT_EQ(r.replay.sites_engine_error, 0u);
}

// Every retirement path of the batched scheduler must contain the throw:
// spawn-time (SIMD refill and scalar drain), mid-flight eval rounds, and
// the retry re-spawn behind the cursor.
TEST(FaultIsolation, BatchedAndSimdSchedulersContainThrows) {
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, {});

  for (const bool simd : {true, false}) {
    for (const char* spec : {"3", "3:once", "0,9:once,17"}) {
      EngineOptions opts;
      opts.threads = 1;
      opts.batch_lanes = 8;
      opts.simd_lanes = simd;
      opts.fail_sites = spec;
      const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
      SCOPED_TRACE(std::string(spec) + (simd ? " simd" : " scalar"));
      ASSERT_EQ(r.runs.size(), ref.runs.size());
      const FailSiteSpec parsed = parse_fail_sites(spec);
      std::size_t expect_errors = 0;
      for (std::size_t i = 0; i < r.runs.size(); ++i) {
        const FailSiteSpec::Entry* e = parsed.find(i);
        if (e != nullptr && !e->once) {
          ++expect_errors;
          EXPECT_EQ(r.runs[i].outcome, Outcome::kEngineError) << i;
        } else {
          EXPECT_EQ(r.runs[i].outcome, ref.runs[i].outcome) << i;
          EXPECT_EQ(r.runs[i].latency_cycles, ref.runs[i].latency_cycles) << i;
        }
      }
      EXPECT_EQ(r.replay.sites_retried, parsed.sites.size());
      EXPECT_EQ(r.replay.sites_engine_error, expect_errors);
    }
  }
}

TEST(FaultIsolation, EngineErrorSitesJournalAndResume) {
  // kEngineError records round-trip through the journal like any other
  // outcome — a resume must not retry them behind the user's back.
  const auto prog = small_workload();
  const auto cfg = small_cfg();
  const std::string dir = scratch_dir("journal");
  EngineOptions opts = journal_opts(dir, false);
  opts.fail_sites = "3";
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_EQ(a.replay.sites_engine_error, 1u);

  const CampaignResult b =
      run_rtl_campaign(prog, cfg, {}, journal_opts(dir, true));
  EXPECT_EQ(b.replay.journal_hits, 24u);
  EXPECT_EQ(b.runs[3].outcome, Outcome::kEngineError);
  EXPECT_EQ(b.runs[3].error, a.runs[3].error);
  expect_identical(a, b);
}

// ---- ISS backend ------------------------------------------------------------

TEST(IssJournal, ResumeMergesBitIdentically) {
  const auto prog = small_workload();
  fault::IssCampaignConfig cfg;
  cfg.samples = 40;
  cfg.models = {iss::IssFaultModel::kStuckAt1, iss::IssFaultModel::kBitFlip};
  const auto ref = run_iss_campaign_engine(prog, cfg, {});

  const std::string dir = scratch_dir("iss");
  run_iss_campaign_engine(prog, cfg, journal_opts(dir, false));
  const fs::path file = journal_file_in(dir);
  const auto lines = read_lines(file);
  ASSERT_EQ(lines.size(), 1u + ref.runs.size());
  // Kill mid-campaign: keep half the records.
  write_file(file, join_lines(lines, 1 + ref.runs.size() / 2));

  const auto r =
      run_iss_campaign_engine(prog, cfg, journal_opts(dir, true, 3));
  ASSERT_EQ(r.runs.size(), ref.runs.size());
  for (std::size_t i = 0; i < r.runs.size(); ++i) {
    EXPECT_EQ(r.runs[i].failure, ref.runs[i].failure) << i;
    EXPECT_EQ(r.runs[i].latent, ref.runs[i].latent) << i;
    EXPECT_EQ(r.runs[i].latency_instr, ref.runs[i].latency_instr) << i;
    EXPECT_FALSE(r.runs[i].engine_error) << i;
  }
  EXPECT_EQ(r.replay.journal_hits, ref.runs.size() / 2);
  ASSERT_EQ(r.per_model.size(), ref.per_model.size());
  for (std::size_t m = 0; m < r.per_model.size(); ++m) {
    EXPECT_EQ(r.per_model[m].failures, ref.per_model[m].failures);
    EXPECT_EQ(r.per_model[m].latent, ref.per_model[m].latent);
    EXPECT_DOUBLE_EQ(r.per_model[m].pf(), ref.per_model[m].pf());
  }
}

TEST(IssJournal, FailSiteIsolatesOneSite) {
  const auto prog = small_workload();
  fault::IssCampaignConfig cfg;
  cfg.samples = 20;
  cfg.models = {iss::IssFaultModel::kBitFlip};
  const auto ref = run_iss_campaign_engine(prog, cfg, {});

  EngineOptions opts;
  opts.threads = 1;
  opts.fail_sites = "2,11:once";
  const auto r = run_iss_campaign_engine(prog, cfg, opts);
  ASSERT_EQ(r.runs.size(), ref.runs.size());
  for (std::size_t i = 0; i < r.runs.size(); ++i) {
    if (i == 2) {
      EXPECT_TRUE(r.runs[i].engine_error);
      EXPECT_NE(r.runs[i].error.find("ISSRTL_FAIL_SITE"), std::string::npos);
    } else {
      EXPECT_FALSE(r.runs[i].engine_error) << i;
      EXPECT_EQ(r.runs[i].failure, ref.runs[i].failure) << i;
      EXPECT_EQ(r.runs[i].latency_instr, ref.runs[i].latency_instr) << i;
    }
  }
  EXPECT_EQ(r.replay.sites_retried, 2u);
  EXPECT_EQ(r.replay.sites_engine_error, 1u);
  EXPECT_EQ(r.per_model[0].errors, 1u);
}

}  // namespace
}  // namespace issrtl::engine

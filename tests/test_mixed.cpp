// Mixed-fidelity golden-prefix accelerator tests.
//
// In mixed mode (EngineOptions::mixed_fidelity) the fault-free prefix of
// every injection runs on the ISS and the architectural state is
// transplanted into the RTL core at the injection instant; only the faulty
// suffix is simulated at RTL fidelity. The claims under test:
//
//   * the transplant contract — state crosses only at a drained instruction
//     boundary (npc == pc + 4), and a fault-free transplanted run completes
//     exactly like the pure-RTL golden run (same suffix writes, same final
//     memory, same retirement count);
//   * schedule invariance — the mixed campaign's fault::outcome_hash is
//     bit-identical across threads, batch sizes, the SIMD toggle and
//     checkpoint-ladder strides;
//   * campaign identity — mixed mode is a DIFFERENT experiment than pure
//     RTL for pipeline-resident faults (the transplanted pipeline starts
//     empty), so it must be folded into the campaign key: a pure-mode
//     journal must not satisfy a mixed-mode resume;
//   * the ISS backend ignores the flag (there is no RTL fidelity to mix).
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "engine/iss_backend.hpp"
#include "engine/rtl_backend.hpp"
#include "fault/campaign.hpp"
#include "iss/emulator.hpp"
#include "rtlcore/core.hpp"
#include "workloads/workload.hpp"

namespace issrtl::engine {
namespace {

namespace fs = std::filesystem;

using fault::CampaignConfig;
using fault::CampaignResult;
using rtl::FaultModel;

isa::Program mixed_workload() {
  return workloads::build("rspeed", {.iterations = 1, .data_seed = 1});
}

CampaignConfig mixed_cfg(std::size_t samples) {
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.samples = samples;
  cfg.models = {FaultModel::kTransientBitFlip};
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  return cfg;
}

// ---- transplant contract ----------------------------------------------------

TEST(Transplant, RejectsInFlightControlTransfer) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  iss::ArchState st;
  st.reset(0x1000);
  st.npc = 0x2000;  // taken branch in flight: not a drained boundary
  EXPECT_THROW(core.transplant(st, 0, 0), std::invalid_argument);
}

TEST(Transplant, FaultFreeSuffixMatchesPureRtlRun) {
  const auto prog = mixed_workload();

  // Pure-RTL reference run.
  Memory golden_mem;
  rtlcore::Leon3Core golden(golden_mem);
  golden.load(prog);
  ASSERT_EQ(golden.run(), iss::HaltReason::kHalted);
  const u64 golden_instret = golden.instret();
  const auto& golden_writes = golden.offcore().writes();

  // ISS to the midpoint instruction boundary, forward-adjusted past any
  // delay slot (same protocol as the mixed worker: an in-flight control
  // transfer cannot be represented in an empty pipeline).
  u64 n = golden_instret / 2;
  Memory iss_mem;
  iss::Emulator emu(iss_mem);
  emu.load(prog);
  emu.advance(n);
  ASSERT_EQ(emu.instret(), n);
  while (emu.halt_reason() == iss::HaltReason::kRunning &&
         emu.state().npc != emu.state().pc + 4) {
    emu.step();
    ++n;
  }
  ASSERT_EQ(emu.state().npc, emu.state().pc + 4);
  const std::size_t prefix_writes = emu.offcore().writes().size();

  // Transplant into a fresh core over a clone of the ISS memory and run the
  // fault-free suffix to completion.
  Memory mem;
  rtlcore::Leon3Core core(mem);
  core.load(prog);
  mem = iss_mem.clone();
  core.transplant(emu.state(), /*cycle=*/0, n, emu.halt_reason(),
                  emu.trap_code());
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);

  // Same retirement count, suffix write trace and final memory image.
  EXPECT_EQ(core.instret(), golden_instret);
  const auto& suffix = core.offcore().writes();
  ASSERT_EQ(prefix_writes + suffix.size(), golden_writes.size());
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    const auto& got = suffix[i];
    const auto& want = golden_writes[prefix_writes + i];
    EXPECT_EQ(got.addr, want.addr) << i;
    EXPECT_EQ(got.size, want.size) << i;
    EXPECT_EQ(got.data, want.data) << i;
  }
  EXPECT_TRUE(mem.equals(golden_mem));
}

TEST(Transplant, PrefixOverloadMakesFullTraceComparable) {
  // The 8-argument overload additionally materialises the golden bus-trace
  // prefix, so end-of-run classification (compare_writes against the full
  // golden trace) works unchanged on a transplanted lane.
  const auto prog = mixed_workload();
  Memory golden_mem;
  rtlcore::Leon3Core golden(golden_mem);
  golden.load(prog);
  ASSERT_EQ(golden.run(), iss::HaltReason::kHalted);

  u64 n = golden.instret() / 3;
  Memory iss_mem;
  iss::Emulator emu(iss_mem);
  emu.load(prog);
  emu.advance(n);
  while (emu.halt_reason() == iss::HaltReason::kRunning &&
         emu.state().npc != emu.state().pc + 4) {
    emu.step();
    ++n;
  }
  ASSERT_EQ(emu.state().npc, emu.state().pc + 4);

  Memory mem;
  rtlcore::Leon3Core core(mem);
  core.load(prog);
  mem = iss_mem.clone();
  core.transplant(emu.state(), /*cycle=*/0, n, emu.halt_reason(),
                  emu.trap_code(), golden.offcore(),
                  emu.offcore().writes().size(), 0);
  ASSERT_EQ(core.run(), iss::HaltReason::kHalted);
  const TraceDivergence div = core.offcore().compare_writes(golden.offcore());
  EXPECT_FALSE(div.diverged) << div.detail;
}

// ---- schedule invariance ----------------------------------------------------

TEST(Mixed, HashInvariantAcrossBatchSimdStrideAndThreads) {
  const auto prog = mixed_workload();
  const auto cfg = mixed_cfg(16);

  EngineOptions ref_opts;
  ref_opts.threads = 1;
  ref_opts.batch_lanes = 1;
  ref_opts.mixed_fidelity = true;
  const CampaignResult ref = run_rtl_campaign(prog, cfg, {}, ref_opts);
  const u64 ref_hash = fault::outcome_hash(ref);
  ASSERT_EQ(ref.runs.size(), 16u);

  struct Case {
    unsigned threads;
    unsigned batch;
    bool simd;
    u64 stride;  // 0 = keep default (auto)
    const char* tag;
  };
  const Case cases[] = {
      {3, 32, false, 0, "t3/b32/flat"},
      {3, 1, true, 0, "t3/serial"},
      {1, 32, true, 0, "t1/b32/simd"},
      {1, 1, true, 1, "t1/stride1"},
  };
  for (const Case& c : cases) {
    EngineOptions opts;
    opts.threads = c.threads;
    opts.batch_lanes = c.batch;
    opts.simd_lanes = c.simd;
    if (c.stride != 0) opts.ladder_stride = c.stride;
    opts.mixed_fidelity = true;
    const CampaignResult got = run_rtl_campaign(prog, cfg, {}, opts);
    EXPECT_EQ(fault::outcome_hash(got), ref_hash) << c.tag;
    ASSERT_EQ(got.runs.size(), ref.runs.size()) << c.tag;
    for (std::size_t i = 0; i < got.runs.size(); ++i) {
      EXPECT_EQ(got.runs[i].outcome, ref.runs[i].outcome) << c.tag << " " << i;
      EXPECT_EQ(got.runs[i].latency_cycles, ref.runs[i].latency_cycles)
          << c.tag << " " << i;
    }
  }
}

TEST(Mixed, SitesMatchPureModeEnumeration) {
  // Mixed mode changes how a site is simulated, never which sites exist:
  // the fault list (node, bit, instant, model) must be identical to pure
  // mode so Pf numbers stay sample-comparable across fidelities.
  const auto prog = mixed_workload();
  const auto cfg = mixed_cfg(16);
  EngineOptions pure;
  pure.threads = 1;
  EngineOptions mixed;
  mixed.threads = 1;
  mixed.mixed_fidelity = true;
  const CampaignResult a = run_rtl_campaign(prog, cfg, {}, pure);
  const CampaignResult b = run_rtl_campaign(prog, cfg, {}, mixed);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.golden_cycles, b.golden_cycles);
  EXPECT_EQ(a.golden_instret, b.golden_instret);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].site.node, b.runs[i].site.node) << i;
    EXPECT_EQ(a.runs[i].site.bit, b.runs[i].site.bit) << i;
    EXPECT_EQ(a.runs[i].site.inject_cycle, b.runs[i].site.inject_cycle) << i;
    EXPECT_EQ(a.runs[i].site.model, b.runs[i].site.model) << i;
  }
}

// ---- campaign identity ------------------------------------------------------

TEST(Mixed, JournalIdentityDiffersFromPureMode) {
  const auto prog = mixed_workload();
  const auto cfg = mixed_cfg(12);
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("issrtl_mixed_" + std::string(info->name()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Populate a journal in pure mode...
  EngineOptions writer;
  writer.threads = 1;
  writer.journal_dir = dir.string();
  const CampaignResult pure = run_rtl_campaign(prog, cfg, {}, writer);
  ASSERT_EQ(pure.runs.size(), 12u);

  // ...a pure-mode resume trusts it in full...
  EngineOptions pure_resume = writer;
  pure_resume.resume = true;
  const CampaignResult resumed = run_rtl_campaign(prog, cfg, {}, pure_resume);
  EXPECT_EQ(resumed.replay.journal_hits, resumed.runs.size());
  EXPECT_EQ(fault::outcome_hash(resumed), fault::outcome_hash(pure));

  // ...but a mixed-mode resume must not import a single pure-mode record:
  // the fidelity is part of the campaign key, so the journal belongs to a
  // different experiment and every site re-simulates.
  EngineOptions mixed_resume = writer;
  mixed_resume.resume = true;
  mixed_resume.mixed_fidelity = true;
  const CampaignResult remixed = run_rtl_campaign(prog, cfg, {}, mixed_resume);
  EXPECT_EQ(remixed.replay.journal_hits, 0u);
  EXPECT_EQ(remixed.runs.size(), pure.runs.size());
  fs::remove_all(dir);
}

TEST(Mixed, IssBackendIgnoresMixedFlag) {
  // There is no lower-fidelity prefix vehicle to mix for the ISS backend;
  // the flag must be a no-op there (and stay out of its campaign key).
  const auto prog =
      workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
  fault::IssCampaignConfig cfg;
  cfg.samples = 24;
  cfg.models = {iss::IssFaultModel::kStuckAt1};
  EngineOptions plain;
  plain.threads = 1;
  EngineOptions mixed = plain;
  mixed.mixed_fidelity = true;
  const auto a = run_iss_campaign_engine(prog, cfg, plain);
  const auto b = run_iss_campaign_engine(prog, cfg, mixed);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].failure, b.runs[i].failure) << i;
    EXPECT_EQ(a.runs[i].latent, b.runs[i].latent) << i;
    EXPECT_EQ(a.runs[i].latency_instr, b.runs[i].latency_instr) << i;
  }
}

// ---- replay economics -------------------------------------------------------

TEST(Mixed, CampaignCompletesWithIssLadder) {
  // Sanity over the mixed replay counters: the ISS golden ladder is the
  // checkpoint store (rungs exist when checkpointing is on), the campaign
  // classifies every site, and convergence cutoffs stay off (a transplanted
  // node state can never be declared coincident with a golden rung).
  const auto prog = mixed_workload();
  const auto cfg = mixed_cfg(12);
  EngineOptions opts;
  opts.threads = 2;
  opts.mixed_fidelity = true;
  const CampaignResult r = run_rtl_campaign(prog, cfg, {}, opts);
  EXPECT_EQ(r.runs.size(), 12u);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.replay.convergence_cutoffs, 0u);
  for (const auto& run : r.runs) {
    EXPECT_NE(run.outcome, fault::Outcome::kEngineError) << run.error;
  }
}

}  // namespace
}  // namespace issrtl::engine

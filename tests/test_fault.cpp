// Fault-injection framework tests: fault-list construction, campaign outcome
// classification, directed injections with known consequences, ISS-level
// campaigns and the lockstep checker.
#include <gtest/gtest.h>

#include <limits>

#include "fault/campaign.hpp"
#include "fault/iss_campaign.hpp"
#include "fault/lockstep.hpp"
#include "fault/report.hpp"
#include "workloads/workload.hpp"

namespace issrtl::fault {
namespace {

using rtl::FaultModel;

isa::Program small_workload() {
  return workloads::build("a2time_x", {.iterations = 1, .data_seed = 1});
}

// ---- fault list construction ----------------------------------------------------

TEST(FaultList, DeterministicPerSeed) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.samples = 50;
  const auto a = build_fault_list(core.sim(), cfg, 10000);
  const auto b = build_fault_list(core.sim(), cfg, 10000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].bit, b[i].bit);
  }
}

TEST(FaultList, SeedChangesSelection) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.samples = 50;
  const auto a = build_fault_list(core.sim(), cfg, 10000);
  cfg.seed = 999;
  const auto b = build_fault_list(core.sim(), cfg, 10000);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += (a[i].node == b[i].node && a[i].bit == b[i].bit);
  }
  EXPECT_LT(same, 10);
}

TEST(FaultList, RespectsUnitFilter) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.unit_prefix = "cmem";
  cfg.samples = 100;
  for (const auto& s : build_fault_list(core.sim(), cfg, 10000)) {
    EXPECT_EQ(core.sim().unit(s.node).rfind("cmem", 0), 0u);
  }
}

TEST(FaultList, BitsWithinWidth) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.samples = 500;
  for (const auto& s : build_fault_list(core.sim(), cfg, 10000)) {
    EXPECT_LT(s.bit, core.sim().width(s.node));
  }
}

TEST(FaultList, ExhaustiveCoversEveryBit) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.unit_prefix = "iu.special";  // small unit: icc, y, cwp, wdepth
  cfg.samples = 0;                 // exhaustive
  cfg.models = {FaultModel::kStuckAt0, FaultModel::kStuckAt1};
  const auto sites = build_fault_list(core.sim(), cfg, 1000);
  EXPECT_EQ(sites.size(),
            2 * core.sim().injectable_bits("iu.special"));
}

TEST(FaultList, UnknownUnitThrows) {
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.unit_prefix = "gpu";
  EXPECT_THROW(build_fault_list(core.sim(), cfg, 1000),
               std::invalid_argument);
}

TEST(FaultList, ZeroInstantsPerSiteRejected) {
  // Used to be silently clamped to 1 — a mistyped CLI argument would
  // quietly run a campaign of a different size than requested.
  Memory mem;
  rtlcore::Leon3Core core(mem);
  CampaignConfig cfg;
  cfg.unit_prefix = "iu";
  cfg.instants_per_site = 0;
  cfg.inject_time = fault::InjectTime::kUniformRandom;
  EXPECT_THROW(build_fault_list(core.sim(), cfg, 1000),
               std::invalid_argument);
}

// ---- campaign classification ------------------------------------------------------

TEST(Campaign, OutcomesPartitionRuns) {
  CampaignConfig cfg;
  cfg.samples = 40;
  cfg.models = {FaultModel::kStuckAt1, FaultModel::kOpenLine};
  const auto r = run_campaign(small_workload(), cfg);
  EXPECT_EQ(r.runs.size(), 80u);
  for (const auto& st : r.per_model) {
    EXPECT_EQ(st.runs, 40u);
    EXPECT_EQ(st.failures + st.hangs + st.latent + st.silent, st.runs);
    EXPECT_GE(st.pf(), 0.0);
    EXPECT_LE(st.pf(), 1.0);
  }
}

TEST(Campaign, DeterministicPerSeed) {
  CampaignConfig cfg;
  cfg.samples = 30;
  const auto a = run_campaign(small_workload(), cfg);
  const auto b = run_campaign(small_workload(), cfg);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
  }
}

TEST(Campaign, GoldenMetadataFilled) {
  CampaignConfig cfg;
  cfg.samples = 5;
  const auto r = run_campaign(small_workload(), cfg);
  EXPECT_GT(r.golden_cycles, 0u);
  EXPECT_GT(r.golden_instret, 0u);
  EXPECT_EQ(r.unit_prefix, "iu");
  EXPECT_FALSE(r.workload.empty());
}

TEST(Campaign, StatsForUnknownModelIsZeroed) {
  CampaignConfig cfg;
  cfg.samples = 5;
  const auto r = run_campaign(small_workload(), cfg);
  EXPECT_EQ(r.stats_for(FaultModel::kStuckAt1).runs, 5u);
  const CampaignStats missing = r.stats_for(FaultModel::kOpenLine);
  EXPECT_EQ(missing.model, FaultModel::kOpenLine);
  EXPECT_EQ(missing.runs, 0u);
  EXPECT_EQ(missing.pf(), 0.0);
}

TEST(Campaign, EmptyCampaignStatsAreZeroed) {
  // An empty result (no runs at all) must not throw either.
  const CampaignResult empty;
  const CampaignStats s = empty.stats_for(FaultModel::kStuckAt1);
  EXPECT_EQ(s.runs, 0u);
  EXPECT_EQ(s.pf(), 0.0);
}

TEST(Campaign, LatencyOnlyOnFailures) {
  CampaignConfig cfg;
  cfg.samples = 60;
  const auto r = run_campaign(small_workload(), cfg);
  for (const auto& run : r.runs) {
    if (run.outcome == Outcome::kSilent || run.outcome == Outcome::kLatent) {
      EXPECT_EQ(run.latency_cycles, 0u);
    }
  }
}

// Directed injections with known consequences.
namespace {

Outcome inject_named(const isa::Program& prog, const std::string& node_name,
                     u8 bit, FaultModel model) {
  Memory golden_mem;
  rtlcore::Leon3Core golden(golden_mem);
  golden.load(prog);
  EXPECT_EQ(golden.run(), iss::HaltReason::kHalted);

  Memory mem;
  rtlcore::Leon3Core core(mem);
  core.load(prog);
  const auto id = core.sim().find_node(node_name);
  EXPECT_TRUE(id.has_value()) << node_name;
  for (int i = 0; i < 10; ++i) core.step();
  core.sim().arm_fault(*id, model, bit);
  const auto halt = core.run(golden.cycles() * 4 + 1000);
  const auto div = core.offcore().compare_writes(golden.offcore());
  if (div.diverged) return Outcome::kFailure;
  if (halt == iss::HaltReason::kStepLimit) return Outcome::kHang;
  return core.arch_state().regs == golden.arch_state().regs
             ? Outcome::kSilent
             : Outcome::kLatent;
}

}  // namespace

TEST(Campaign, StuckFetchPcBitIsCatastrophic) {
  // Forcing a low PC bit corrupts the instruction stream: failure or hang.
  const auto o =
      inject_named(small_workload(), "fetch_pc", 2, FaultModel::kStuckAt1);
  EXPECT_TRUE(o == Outcome::kFailure || o == Outcome::kHang);
}

TEST(Campaign, FaultInUnusedWindowIsSilentOrLatent) {
  // The excerpt never SAVEs: windows 3-6 are untouched, so a stuck bit in
  // one of their locals can never propagate to off-core activity.
  const auto o =
      inject_named(small_workload(), "r_w4_8", 13, FaultModel::kStuckAt1);
  EXPECT_TRUE(o == Outcome::kSilent || o == Outcome::kLatent);
}

TEST(Campaign, StuckDestIndexBitAliasesInsteadOfCrashing) {
  // A stuck high bit in the WB-stage destination index can push the
  // physical register number past the 136-entry table; the regfile address
  // decoder aliases it back in (hardware ignores unimplemented address
  // bits), so the run classifies deterministically instead of aborting.
  const auto o =
      inject_named(small_workload(), "wb_dphys", 7, FaultModel::kStuckAt1);
  EXPECT_TRUE(o == Outcome::kFailure || o == Outcome::kHang ||
              o == Outcome::kLatent || o == Outcome::kSilent);
}

TEST(Campaign, OpenLineOnQuietNodeIsSilent) {
  // Open-line freezes the value a node already holds — on a constant-zero
  // node of an idle unit this can never change anything.
  const auto o =
      inject_named(small_workload(), "div_q", 7, FaultModel::kOpenLine);
  EXPECT_EQ(o, Outcome::kSilent);
}

TEST(Campaign, StoreDataPathFaultCausesFailure) {
  // sdata in the ME latch feeds every store's bus payload; the excerpt
  // stores every word it copies, so a stuck bit must show up off-core.
  const auto o =
      inject_named(small_workload(), "me_sdata", 0, FaultModel::kStuckAt1);
  EXPECT_EQ(o, Outcome::kFailure);
}

// ---- ISS campaign -------------------------------------------------------------------

TEST(IssCampaign, RunsAndClassifies) {
  IssCampaignConfig cfg;
  cfg.samples = 60;
  cfg.models = {iss::IssFaultModel::kStuckAt1, iss::IssFaultModel::kBitFlip};
  const auto r = run_iss_campaign(small_workload(), cfg);
  EXPECT_EQ(r.runs.size(), 120u);
  EXPECT_GT(r.golden_instret, 0u);
  for (const auto& st : r.per_model) {
    EXPECT_EQ(st.runs, 60u);
    EXPECT_LE(st.failures + st.latent, st.runs);
  }
}

TEST(IssCampaign, PermanentFaultsFailMoreThanTransients) {
  IssCampaignConfig cfg;
  cfg.samples = 120;
  cfg.models = {iss::IssFaultModel::kStuckAt1, iss::IssFaultModel::kBitFlip};
  const auto r = run_iss_campaign(
      workloads::build("rspeed", {.iterations = 1, .data_seed = 1}), cfg);
  EXPECT_GE(r.per_model[0].pf(), r.per_model[1].pf());
}

// ---- lockstep ------------------------------------------------------------------------

TEST(Lockstep, DetectsStoreDataFault) {
  const auto prog = small_workload();
  Memory mem;
  rtlcore::Leon3Core probe(mem);  // only for node lookup
  const auto id = probe.sim().find_node("me_sdata");
  ASSERT_TRUE(id.has_value());
  FaultSite site{*id, 1, FaultModel::kStuckAt1, 20};
  const auto r = run_lockstep(prog, site);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.detect_cycle, site.inject_cycle);
  EXPECT_EQ(r.detection_latency, r.detect_cycle - site.inject_cycle);
}

TEST(Lockstep, SilentFaultNotDetected) {
  const auto prog = small_workload();
  Memory mem;
  rtlcore::Leon3Core probe(mem);
  const auto id = probe.sim().find_node("r_w4_8");
  ASSERT_TRUE(id.has_value());
  FaultSite site{*id, 3, FaultModel::kStuckAt1, 20};
  const auto r = run_lockstep(prog, site);
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.master_halt, iss::HaltReason::kHalted);
  EXPECT_EQ(r.checker_halt, iss::HaltReason::kHalted);
}

// ---- report --------------------------------------------------------------------------

TEST(Report, TableRendersAligned) {
  TextTable t({"bench", "Pf"});
  t.add_row({"rspeed", TextTable::pct(0.25)});
  t.add_row({"membench-long-name", TextTable::pct(0.071, 2)});
  const std::string s = t.render();
  EXPECT_NE(s.find("| bench"), std::string::npos);
  EXPECT_NE(s.find("25.0%"), std::string::npos);
  EXPECT_NE(s.find("7.10%"), std::string::npos);
  // All lines have equal length.
  std::size_t first = s.find('\n');
  std::size_t pos = 0, len = first;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, len);
    pos = next + 1;
  }
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(TextTable::pct(0.5), "50.0%");
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Report, PctRendersNonFiniteAsNa) {
  // A 0-sample campaign divides 0/0: the table must say "n/a", not "nan%"
  // or "-nan%" (which read as formatting bugs in a report).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(TextTable::pct(nan), "n/a");
  EXPECT_EQ(TextTable::pct(-nan), "n/a");
  EXPECT_EQ(TextTable::pct(inf), "n/a");
  EXPECT_EQ(TextTable::pct(-inf), "n/a");
  // A zeroed CampaignStats (runs == 0) renders cleanly end to end.
  CampaignStats zero;
  TextTable t({"model", "Pf"});
  t.add_row({"none", TextTable::pct(zero.pf())});
  EXPECT_NE(t.render().find("0.0%"), std::string::npos);
  TextTable u({"model", "Pf"});
  u.add_row({"none", TextTable::pct(0.0 / static_cast<double>(zero.runs))});
  EXPECT_NE(u.render().find("n/a"), std::string::npos);
}

TEST(Report, AddRowRejectsRowsWiderThanHeader) {
  TextTable t({"a", "b"});
  t.add_row({"1"});            // short rows pad
  t.add_row({"1", "2"});       // exact rows fine
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  // The two good rows survive; render still aligns.
  const std::string s = t.render();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace issrtl::fault

// Property suite: ISS and RTL arithmetic against an independent reference.
//
// The cosimulation tests prove ISS == RTL; this suite pins both to a third,
// independently written model of the SPARC V8 integer semantics (computed
// with 64-bit host arithmetic rather than bit-formula flags), over random
// operands including the classic corner values. A common-mode error in the
// shared flag formulas would slip through cosim but not through this.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "iss/emulator.hpp"

namespace issrtl {
namespace {

using isa::Assembler;
using isa::Opcode;
using isa::Reg;

struct RefResult {
  u32 value = 0;
  bool n = false, z = false, v = false, c = false;
  bool sets_cc = false;
};

/// Reference semantics via 64-bit arithmetic (no 32-bit bit tricks).
RefResult reference(Opcode op, u32 a, u32 b, bool carry_in) {
  RefResult r;
  const i64 sa = static_cast<i32>(a), sb = static_cast<i32>(b);
  const u64 ua = a, ub = b;
  auto finish_add = [&](u64 wide, i64 swide) {
    r.value = static_cast<u32>(wide);
    r.n = (r.value >> 31) & 1;
    r.z = r.value == 0;
    r.c = wide > 0xFFFFFFFFull;
    r.v = swide > 0x7FFFFFFFll || swide < -0x80000000ll;
    r.sets_cc = true;
  };
  switch (op) {
    case Opcode::kADDCC: finish_add(ua + ub, sa + sb); break;
    case Opcode::kADDXCC:
      finish_add(ua + ub + (carry_in ? 1 : 0), sa + sb + (carry_in ? 1 : 0));
      break;
    case Opcode::kSUBCC: {
      r.value = a - b;
      r.n = (r.value >> 31) & 1;
      r.z = r.value == 0;
      r.c = ub > ua;  // borrow
      const i64 d = sa - sb;
      r.v = d > 0x7FFFFFFFll || d < -0x80000000ll;
      r.sets_cc = true;
      break;
    }
    case Opcode::kSUBXCC: {
      const u64 sub = ub + (carry_in ? 1 : 0);
      r.value = static_cast<u32>(ua - sub);
      r.n = (r.value >> 31) & 1;
      r.z = r.value == 0;
      r.c = sub > ua;
      const i64 d = sa - sb - (carry_in ? 1 : 0);
      r.v = d > 0x7FFFFFFFll || d < -0x80000000ll;
      r.sets_cc = true;
      break;
    }
    case Opcode::kANDCC: r.value = a & b; goto logic;
    case Opcode::kORCC: r.value = a | b; goto logic;
    case Opcode::kXORCC: r.value = a ^ b; goto logic;
    case Opcode::kANDNCC: r.value = a & ~b; goto logic;
    case Opcode::kORNCC: r.value = a | ~b; goto logic;
    case Opcode::kXNORCC: r.value = ~(a ^ b); goto logic;
    logic:
      r.n = (r.value >> 31) & 1;
      r.z = r.value == 0;
      r.v = r.c = false;
      r.sets_cc = true;
      break;
    default:
      ADD_FAILURE() << "unhandled reference opcode";
  }
  return r;
}

/// Execute `op %o0, %o1 -> %o2` on the ISS with optional pre-set carry.
struct ExecOut {
  u32 value;
  iss::Icc icc;
};

ExecOut run_op(Opcode op, u32 a, u32 b, bool carry_in) {
  Assembler as("ref");
  as.set32(Reg::o0, a);
  as.set32(Reg::o1, b);
  if (carry_in) {
    // Force C=1 without disturbing the operands: 0 - 1 borrows.
    as.subcc(Reg::g1, Reg::g0, 1);
  } else {
    as.addcc(Reg::g1, Reg::g0, 0);  // clears all flags
  }
  as.emit(isa::encode_f3_reg(op, isa::reg_num(Reg::o2), isa::reg_num(Reg::o0),
                             isa::reg_num(Reg::o1)));
  as.halt();
  Memory mem;
  iss::Emulator emu(mem);
  emu.load(as.finalize());
  EXPECT_EQ(emu.run(), iss::HaltReason::kHalted);
  return {emu.state().get_reg(10), emu.state().icc};
}

const u32 kCorners[] = {0,          1,          2,          0x7FFFFFFF,
                        0x80000000, 0x80000001, 0xFFFFFFFF, 0xFFFFFFFE,
                        0x55555555, 0xAAAAAAAA, 0x00010000, 0xFFFF0000};

class AluReference : public ::testing::TestWithParam<int> {};

TEST_P(AluReference, MatchesIndependentModel) {
  const auto op = static_cast<Opcode>(GetParam());
  Xoshiro256 rng(GetParam() * 31337);
  auto check = [&](u32 a, u32 b, bool cin) {
    const RefResult ref = reference(op, a, b, cin);
    const ExecOut got = run_op(op, a, b, cin);
    EXPECT_EQ(got.value, ref.value)
        << isa::mnemonic(op) << " " << a << "," << b << " cin=" << cin;
    EXPECT_EQ(got.icc.n(), ref.n) << isa::mnemonic(op) << " N " << a << "," << b;
    EXPECT_EQ(got.icc.z(), ref.z) << isa::mnemonic(op) << " Z " << a << "," << b;
    EXPECT_EQ(got.icc.v(), ref.v) << isa::mnemonic(op) << " V " << a << "," << b;
    EXPECT_EQ(got.icc.c(), ref.c) << isa::mnemonic(op) << " C " << a << "," << b;
  };
  // Corner cross product with both carry polarities.
  for (const u32 a : kCorners) {
    for (const u32 b : kCorners) {
      check(a, b, false);
      check(a, b, true);
    }
  }
  // Random fuzz.
  for (int i = 0; i < 200; ++i) {
    check(rng.next_u32(), rng.next_u32(), rng.next_below(2) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CcOps, AluReference,
    ::testing::Values(static_cast<int>(Opcode::kADDCC),
                      static_cast<int>(Opcode::kADDXCC),
                      static_cast<int>(Opcode::kSUBCC),
                      static_cast<int>(Opcode::kSUBXCC),
                      static_cast<int>(Opcode::kANDCC),
                      static_cast<int>(Opcode::kORCC),
                      static_cast<int>(Opcode::kXORCC),
                      static_cast<int>(Opcode::kANDNCC),
                      static_cast<int>(Opcode::kORNCC),
                      static_cast<int>(Opcode::kXNORCC)),
    [](const auto& info) {
      return std::string(isa::mnemonic(static_cast<Opcode>(info.param)));
    });

// Multiply/divide against 64-bit host reference.
TEST(MulDivReference, ProductsAndQuotients) {
  Xoshiro256 rng(777);
  for (int i = 0; i < 300; ++i) {
    const u32 a = rng.next_u32(), b = rng.next_u32() | 1;  // avoid div0
    Assembler as("md");
    as.set32(Reg::o0, a);
    as.set32(Reg::o1, b);
    as.umul(Reg::o2, Reg::o0, Reg::o1);
    as.rdy(Reg::o3);
    as.smul(Reg::o4, Reg::o0, Reg::o1);
    as.rdy(Reg::o5);
    as.wry(Reg::g0, 0);
    as.udiv(Reg::l0, Reg::o0, Reg::o1);
    as.halt();
    Memory mem;
    iss::Emulator emu(mem);
    emu.load(as.finalize());
    ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);
    const u64 up = static_cast<u64>(a) * b;
    const i64 sp = static_cast<i64>(static_cast<i32>(a)) *
                   static_cast<i64>(static_cast<i32>(b));
    EXPECT_EQ(emu.state().get_reg(10), static_cast<u32>(up));
    EXPECT_EQ(emu.state().get_reg(11), static_cast<u32>(up >> 32));
    EXPECT_EQ(emu.state().get_reg(12), static_cast<u32>(sp));
    EXPECT_EQ(emu.state().get_reg(13),
              static_cast<u32>(static_cast<u64>(sp) >> 32));
    EXPECT_EQ(emu.state().get_reg(16), a / b);
  }
}

// Shift semantics against host reference for all counts 0..31 (register and
// immediate forms; counts above 31 must wrap).
TEST(ShiftReference, AllCountsAndWrap) {
  Xoshiro256 rng(4242);
  for (int i = 0; i < 40; ++i) {
    const u32 x = rng.next_u32();
    for (u32 count = 0; count < 40; ++count) {
      Assembler as("sh");
      as.set32(Reg::o0, x);
      as.set32(Reg::o1, count);
      as.sll(Reg::o2, Reg::o0, Reg::o1);
      as.srl(Reg::o3, Reg::o0, Reg::o1);
      as.sra(Reg::o4, Reg::o0, Reg::o1);
      as.halt();
      Memory mem;
      iss::Emulator emu(mem);
      emu.load(as.finalize());
      ASSERT_EQ(emu.run(), iss::HaltReason::kHalted);
      const u32 k = count & 31;
      EXPECT_EQ(emu.state().get_reg(10), x << k);
      EXPECT_EQ(emu.state().get_reg(11), x >> k);
      EXPECT_EQ(emu.state().get_reg(12),
                static_cast<u32>(static_cast<i32>(x) >> k));
    }
  }
}

}  // namespace
}  // namespace issrtl
